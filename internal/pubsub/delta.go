package pubsub

import (
	"errors"
	"fmt"
	"reflect"
	"sort"

	"ppcd/internal/core"
	"ppcd/internal/ff64"
	"ppcd/internal/policy"
)

// This file is the dissemination layer's diff engine. A publisher that keeps
// its published broadcasts can express any later epoch as a BroadcastDelta
// against an earlier one: only the configurations, shards and items whose
// revision advanced past the base epoch travel, plus explicit removals. A
// subscriber holding the base broadcast applies the delta and ends up with a
// state that decrypts identically to a full fetch of the target epoch —
// which turns the paper's "rekeying is pure broadcast" (§V-C) into
// "rekeying is a pure *incremental* broadcast": a single leave at N
// subscribers ships one re-solved shard sub-header, the per-shard wraps and
// the re-encrypted items of the affected configurations, not the full
// multi-configuration header set.

// ConfigPatch replaces one configuration's rekey material inside a delta.
// Exactly one of Header/Grouped is set for an accessible configuration;
// both nil means the configuration became inaccessible (no qualified rows —
// subscribers drop their header for it).
type ConfigPatch struct {
	Key policy.ConfigKey
	Rev uint64
	// ShardRevs carries the target epoch's per-shard revisions when the
	// patch is grouped (parallel to the reconstructed shard list).
	ShardRevs []uint64
	Header    *core.Header
	Grouped   *GroupedPatch
}

// GroupedPatch rebuilds a grouped header incrementally: the fresh rekey
// nonce and ALL per-shard wraps (8 bytes each — they change on every
// reassembly), but sub-headers only for shards that actually re-solved.
// From[i] names the shard of the BASE configuration whose sub-header shard i
// keeps (clean shard), or -1 to consume the next entry of Headers (dirty or
// new shard).
type GroupedPatch struct {
	RekeyNonce []byte
	Wraps      []ff64.Elem
	From       []int
	Headers    []*core.Header
}

// BroadcastDelta is everything that changed between two epochs of one
// document. Empty Configs/Items slices are legal (a steady-state republish
// changes nothing but the epoch).
type BroadcastDelta struct {
	DocName   string
	BaseEpoch uint64
	Epoch     uint64
	// Gen is the publisher generation both epochs belong to; Apply rejects
	// a base from another incarnation even when the epoch numbers collide.
	Gen uint64
	// PoliciesChanged flags a replacement of the policy list (rare: policy
	// set edits); Policies is only read when it is true.
	PoliciesChanged bool
	Policies        []PolicyInfo
	Configs         []ConfigPatch
	RemovedConfigs  []policy.ConfigKey
	Items           []Item
	RemovedItems    []string
}

// Errors returned by Diff and Apply.
var (
	ErrDeltaDocMismatch  = errors.New("pubsub: delta document does not match state")
	ErrDeltaBaseMismatch = errors.New("pubsub: delta base epoch does not match state (refetch a snapshot)")
)

// Diff computes the delta that turns the base broadcast into cur. Both must
// be broadcasts of the same document with base.Epoch < cur.Epoch; the
// revisions stamped by Publish decide what travels. Clean grouped shards are
// referenced by their index in the base configuration (located by sub-header
// identity); a shard whose sub-header cannot be found in the base — e.g.
// when diffing across wire-decoded broadcasts that share no pointers — is
// shipped in full, trading delta size for correctness, never the reverse.
func Diff(base, cur *Broadcast) (*BroadcastDelta, error) {
	if base == nil || cur == nil {
		return nil, errors.New("pubsub: nil broadcast")
	}
	if base.DocName != cur.DocName {
		return nil, ErrDeltaDocMismatch
	}
	if base.Epoch >= cur.Epoch {
		return nil, fmt.Errorf("pubsub: delta base epoch %d not before %d", base.Epoch, cur.Epoch)
	}
	if base.Gen != cur.Gen {
		return nil, fmt.Errorf("pubsub: delta across publisher generations %d and %d", base.Gen, cur.Gen)
	}
	d := &BroadcastDelta{DocName: cur.DocName, BaseEpoch: base.Epoch, Epoch: cur.Epoch, Gen: cur.Gen}
	if !reflect.DeepEqual(base.Policies, cur.Policies) {
		d.PoliciesChanged = true
		d.Policies = cur.Policies
	}

	baseCfg := make(map[policy.ConfigKey]*ConfigInfo, len(base.Configs))
	for i := range base.Configs {
		baseCfg[base.Configs[i].Key] = &base.Configs[i]
	}
	curKeys := make(map[policy.ConfigKey]bool, len(cur.Configs))
	for i := range cur.Configs {
		ci := &cur.Configs[i]
		curKeys[ci.Key] = true
		bc := baseCfg[ci.Key]
		if bc != nil && ci.Rev <= base.Epoch {
			continue // unchanged since the base epoch
		}
		patch := ConfigPatch{Key: ci.Key, Rev: ci.Rev, ShardRevs: ci.ShardRevs, Header: ci.Header}
		if ci.Grouped != nil {
			if len(ci.ShardRevs) != len(ci.Grouped.Shards) {
				return nil, fmt.Errorf("pubsub: configuration %q has %d shard revisions for %d shards", ci.Key, len(ci.ShardRevs), len(ci.Grouped.Shards))
			}
			patch.Grouped = groupedPatch(ci, bc, base.Epoch)
		}
		d.Configs = append(d.Configs, patch)
	}
	for i := range base.Configs {
		if !curKeys[base.Configs[i].Key] {
			d.RemovedConfigs = append(d.RemovedConfigs, base.Configs[i].Key)
		}
	}

	baseItems := make(map[string]bool, len(base.Items))
	for i := range base.Items {
		baseItems[base.Items[i].Subdoc] = true
	}
	curItems := make(map[string]bool, len(cur.Items))
	for i := range cur.Items {
		it := &cur.Items[i]
		curItems[it.Subdoc] = true
		if baseItems[it.Subdoc] && it.Rev <= base.Epoch {
			continue
		}
		d.Items = append(d.Items, *it)
	}
	for i := range base.Items {
		if !curItems[base.Items[i].Subdoc] {
			d.RemovedItems = append(d.RemovedItems, base.Items[i].Subdoc)
		}
	}
	return d, nil
}

// groupedPatch expresses one grouped configuration against its base
// revision: clean shards (rev ≤ base epoch, sub-header present in the base)
// become index references, the rest ship their sub-header.
func groupedPatch(ci, bc *ConfigInfo, baseEpoch uint64) *GroupedPatch {
	g := ci.Grouped
	p := &GroupedPatch{
		RekeyNonce: g.RekeyNonce,
		Wraps:      make([]ff64.Elem, len(g.Shards)),
		From:       make([]int, len(g.Shards)),
	}
	var baseIdx map[*core.Header]int
	if bc != nil && bc.Grouped != nil {
		baseIdx = make(map[*core.Header]int, len(bc.Grouped.Shards))
		for j, sh := range bc.Grouped.Shards {
			baseIdx[sh.Hdr] = j
		}
	}
	for i, sh := range g.Shards {
		p.Wraps[i] = sh.Wrap
		if j, ok := baseIdx[sh.Hdr]; ok && i < len(ci.ShardRevs) && ci.ShardRevs[i] <= baseEpoch {
			p.From[i] = j
			continue
		}
		p.From[i] = -1
		p.Headers = append(p.Headers, sh.Hdr)
	}
	return p
}

// Apply produces the broadcast state at d.Epoch from the base state. It
// validates that the base matches the delta's document and base epoch and
// never mutates its input: unchanged configurations, shards and items are
// shared between the two broadcasts, so a subscriber's cached KEVs (keyed by
// sub-header content) stay valid across patches.
func (d *BroadcastDelta) Apply(base *Broadcast) (*Broadcast, error) {
	if base == nil {
		return nil, errors.New("pubsub: nil base broadcast")
	}
	if base.DocName != d.DocName {
		return nil, ErrDeltaDocMismatch
	}
	if base.Epoch != d.BaseEpoch {
		return nil, fmt.Errorf("%w: state at epoch %d, delta base %d", ErrDeltaBaseMismatch, base.Epoch, d.BaseEpoch)
	}
	if base.Gen != d.Gen {
		return nil, fmt.Errorf("%w: state from publisher generation %d, delta from %d", ErrDeltaBaseMismatch, base.Gen, d.Gen)
	}
	out := &Broadcast{
		DocName:  base.DocName,
		Epoch:    d.Epoch,
		Gen:      d.Gen,
		Policies: base.Policies,
		Configs:  append([]ConfigInfo(nil), base.Configs...),
		Items:    append([]Item(nil), base.Items...),
	}
	if d.PoliciesChanged {
		out.Policies = d.Policies
	}

	cfgIdx := make(map[policy.ConfigKey]int, len(out.Configs))
	for i := range out.Configs {
		cfgIdx[out.Configs[i].Key] = i
	}
	for _, patch := range d.Configs {
		ci := ConfigInfo{Key: patch.Key, Rev: patch.Rev, ShardRevs: patch.ShardRevs, Header: patch.Header}
		if patch.Grouped != nil {
			var baseGrouped *core.GroupedHeader
			if i, ok := cfgIdx[patch.Key]; ok {
				// Resolve clean-shard references against the BASE config
				// (base.Configs and out.Configs share elements until
				// patched, and each config is patched at most once per
				// delta, so the lookup still sees the base material).
				baseGrouped = out.Configs[i].Grouped
			}
			g, err := patch.Grouped.rebuild(baseGrouped)
			if err != nil {
				return nil, fmt.Errorf("pubsub: patching configuration %q: %w", patch.Key, err)
			}
			if len(patch.ShardRevs) != len(g.Shards) {
				return nil, fmt.Errorf("pubsub: patching configuration %q: %d shard revisions for %d shards", patch.Key, len(patch.ShardRevs), len(g.Shards))
			}
			ci.Grouped = g
		}
		if i, ok := cfgIdx[patch.Key]; ok {
			out.Configs[i] = ci
		} else {
			cfgIdx[patch.Key] = len(out.Configs)
			out.Configs = append(out.Configs, ci)
		}
	}
	if len(d.RemovedConfigs) > 0 {
		removed := make(map[policy.ConfigKey]bool, len(d.RemovedConfigs))
		for _, k := range d.RemovedConfigs {
			removed[k] = true
		}
		kept := out.Configs[:0:0]
		for _, ci := range out.Configs {
			if !removed[ci.Key] {
				kept = append(kept, ci)
			}
		}
		out.Configs = kept
	}
	// Keep the deterministic configuration order Publish emits, so a patched
	// state and a fresh fetch agree structurally.
	sort.Slice(out.Configs, func(i, j int) bool { return out.Configs[i].Key < out.Configs[j].Key })

	itemIdx := make(map[string]int, len(out.Items))
	for i := range out.Items {
		itemIdx[out.Items[i].Subdoc] = i
	}
	for _, it := range d.Items {
		if i, ok := itemIdx[it.Subdoc]; ok {
			out.Items[i] = it
		} else {
			itemIdx[it.Subdoc] = len(out.Items)
			out.Items = append(out.Items, it)
		}
	}
	if len(d.RemovedItems) > 0 {
		removed := make(map[string]bool, len(d.RemovedItems))
		for _, name := range d.RemovedItems {
			removed[name] = true
		}
		kept := out.Items[:0:0]
		for _, it := range out.Items {
			if !removed[it.Subdoc] {
				kept = append(kept, it)
			}
		}
		out.Items = kept
	}
	return out, nil
}

// rebuild reconstructs the full grouped header from a patch and the base
// configuration's grouped header (nil when the configuration is new or was
// ungrouped — then every shard must ship its sub-header).
func (p *GroupedPatch) rebuild(base *core.GroupedHeader) (*core.GroupedHeader, error) {
	if len(p.Wraps) != len(p.From) {
		return nil, fmt.Errorf("%d wraps for %d shards", len(p.Wraps), len(p.From))
	}
	g := &core.GroupedHeader{RekeyNonce: p.RekeyNonce, Shards: make([]core.GroupShard, len(p.From))}
	next := 0
	for i, from := range p.From {
		var hdr *core.Header
		switch {
		case from < 0:
			if next >= len(p.Headers) {
				return nil, errors.New("patch ships fewer sub-headers than it references")
			}
			hdr = p.Headers[next]
			next++
		default:
			if base == nil {
				return nil, errors.New("patch references base shards but the state has no grouped header")
			}
			if from >= len(base.Shards) {
				return nil, fmt.Errorf("patch references base shard %d of %d", from, len(base.Shards))
			}
			hdr = base.Shards[from].Hdr
		}
		g.Shards[i] = core.GroupShard{Hdr: hdr, Wrap: p.Wraps[i]}
	}
	if next != len(p.Headers) {
		return nil, fmt.Errorf("patch ships %d sub-headers, references %d", len(p.Headers), next)
	}
	return g, nil
}
