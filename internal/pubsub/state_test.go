package pubsub

import (
	"testing"

	"ppcd/internal/policy"
)

func TestExportImportRoundTrip(t *testing.T) {
	pub := newEHRPublisher(t)
	doctor := newSub(t, pub, "pn-st1", map[string]string{"role": "doc"})
	nurse := newSub(t, pub, "pn-st2", map[string]string{"role": "nur", "level": "60"})

	state, err := pub.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	// A freshly constructed publisher with the same policies resumes from
	// the exported table: existing subscribers keep decrypting without
	// re-registration.
	params, mgr := testEnv(t)
	pub2, err := NewPublisher(params, mgr.PublicKey(), ehrACPs(t), Options{Ell: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := pub2.ImportState(state); err != nil {
		t.Fatal(err)
	}
	if pub2.SubscriberCount() != 2 {
		t.Fatalf("restored %d subscribers, want 2", pub2.SubscriberCount())
	}
	b, err := pub2.Publish(ehrDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := doctor.Decrypt(b); len(got) != 5 {
		t.Errorf("doctor decrypts %d after restore", len(got))
	}
	if got, _ := nurse.Decrypt(b); len(got) != 5 {
		t.Errorf("nurse decrypts %d after restore", len(got))
	}
}

func TestImportDropsStaleConditions(t *testing.T) {
	pub := newEHRPublisher(t)
	newSub(t, pub, "pn-st3", map[string]string{"role": "doc", "level": "60"})
	state, err := pub.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	// New publisher with a REDUCED policy set: level conditions vanish.
	params, mgr := testEnv(t)
	onlyDoc, err := policy.New("acp3", "role = doc", "EHR.xml", "Plan")
	if err != nil {
		t.Fatal(err)
	}
	pub2, err := NewPublisher(params, mgr.PublicKey(), []*policy.ACP{onlyDoc}, Options{Ell: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := pub2.ImportState(state); err != nil {
		t.Fatal(err)
	}
	row := pub2.reg.rowCopy("pn-st3")
	for cond := range row {
		if cond != "role = doc" {
			t.Errorf("stale condition %q survived import", cond)
		}
	}
}

func TestImportValidation(t *testing.T) {
	pub := newEHRPublisher(t)
	if err := pub.ImportState([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if err := pub.ImportState([]byte(`{"version":9,"table":{}}`)); err == nil {
		t.Error("future version accepted")
	}
	if err := pub.ImportState([]byte(`{"version":1,"table":{"":{"role = doc":5}}}`)); err == nil {
		t.Error("empty nym accepted")
	}
	if err := pub.ImportState([]byte(`{"version":1,"table":{"pn-x":{"role = doc":0}}}`)); err == nil {
		t.Error("zero CSS accepted")
	}
	if err := pub.ImportState([]byte(`{"version":1,"table":{"pn-x":{"role = doc":18446744073709551615}}}`)); err == nil {
		t.Error("out-of-field CSS accepted")
	}
}

func TestImportReplacesTable(t *testing.T) {
	pub := newEHRPublisher(t)
	newSub(t, pub, "pn-old", map[string]string{"role": "doc"})
	if err := pub.ImportState([]byte(`{"version":1,"table":{}}`)); err != nil {
		t.Fatal(err)
	}
	if pub.SubscriberCount() != 0 {
		t.Error("import did not replace the table")
	}
}

func TestSubscriberCSSExportImport(t *testing.T) {
	pub := newEHRPublisher(t)
	doctor := newSub(t, pub, "pn-css", map[string]string{"role": "doc"})
	state, err := doctor.ExportCSS()
	if err != nil {
		t.Fatal(err)
	}

	// A fresh process restores the CSS set and decrypts without
	// re-registering (which would have rotated the publisher-side CSSs).
	restored, err := NewSubscriber("pn-css")
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.ImportCSS(state); err != nil {
		t.Fatal(err)
	}
	if restored.CSSCount() != doctor.CSSCount() {
		t.Fatalf("restored %d CSSs, want %d", restored.CSSCount(), doctor.CSSCount())
	}
	b, err := pub.Publish(ehrDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := restored.Decrypt(b); len(got) != 5 {
		t.Errorf("restored subscriber decrypts %d subdocs", len(got))
	}
}

func TestSubscriberImportCSSValidation(t *testing.T) {
	sub, err := NewSubscriber("pn-v")
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.ImportCSS([]byte("junk")); err == nil {
		t.Error("garbage accepted")
	}
	if err := sub.ImportCSS([]byte(`{"version":2,"nym":"pn-v","css":{}}`)); err == nil {
		t.Error("future version accepted")
	}
	if err := sub.ImportCSS([]byte(`{"version":1,"nym":"other","css":{}}`)); err == nil {
		t.Error("foreign nym accepted")
	}
	if err := sub.ImportCSS([]byte(`{"version":1,"nym":"pn-v","css":{"c":0}}`)); err == nil {
		t.Error("zero CSS accepted")
	}
}
