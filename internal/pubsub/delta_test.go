package pubsub

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ppcd/internal/core"
	"ppcd/internal/document"
	"ppcd/internal/ff64"
	"ppcd/internal/policy"
	"ppcd/internal/sym"
)

// deltaEnv is a publisher with registry-injected subscribers (no OCBE, so
// churn property tests stay fast) plus the mirror CSS maps for building
// subscriber-side state.
type deltaEnv struct {
	pub  *Publisher
	doc  *document.Document
	css  map[string]map[string]core.CSS // nym → cond → CSS
	next int
}

func newDeltaEnv(t *testing.T, policies, groupSize int) *deltaEnv {
	t.Helper()
	params, mgr := testEnv(t)
	var acps []*policy.ACP
	var subdocs []document.Subdocument
	for i := 0; i < policies; i++ {
		a, err := policy.New(fmt.Sprintf("acp%d", i), fmt.Sprintf("attr%d >= 1", i), "doc", fmt.Sprintf("sd%d", i))
		if err != nil {
			t.Fatal(err)
		}
		acps = append(acps, a)
		subdocs = append(subdocs, document.Subdocument{Name: fmt.Sprintf("sd%d", i), Content: []byte(fmt.Sprintf("content of sd%d", i))})
	}
	doc, err := document.New("doc", subdocs...)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewPublisher(params, mgr.PublicKey(), acps, Options{Ell: 8, GroupSize: groupSize})
	if err != nil {
		t.Fatal(err)
	}
	return &deltaEnv{pub: pub, doc: doc, css: make(map[string]map[string]core.CSS)}
}

// join registers a synthetic subscriber for the first `conds` conditions by
// writing CSS cells straight into table T (the crypto-free equivalent of a
// successful OCBE registration).
func (e *deltaEnv) join(t *testing.T, conds int) string {
	t.Helper()
	nym := fmt.Sprintf("pn-%d", e.next)
	e.next++
	cells := make(map[string]core.CSS, conds)
	for i := 0; i < conds; i++ {
		css, err := core.NewCSS()
		if err != nil {
			t.Fatal(err)
		}
		cells[fmt.Sprintf("attr%d >= 1", i)] = css
	}
	e.pub.reg.setCells(nym, cells)
	if e.css[nym] == nil {
		e.css[nym] = make(map[string]core.CSS)
	}
	for k, v := range cells {
		e.css[nym][k] = v
	}
	return nym
}

// subscriber builds a Subscriber holding nym's mirror CSSs.
func (e *deltaEnv) subscriber(t *testing.T, nym string) *Subscriber {
	t.Helper()
	s, err := NewSubscriber(nym)
	if err != nil {
		t.Fatal(err)
	}
	for cond, css := range e.css[nym] {
		s.css[cond] = css
	}
	return s
}

func decryptEq(a, b map[string][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if !bytes.Equal(v, b[k]) {
			return false
		}
	}
	return true
}

// TestDeltaPropertyRandomChurn drives random churn sequences — joins,
// subscription revocations and credential revocations interleaved with
// publishes — in both grouped and ungrouped modes, and checks after every
// publish that a streaming subscriber (one snapshot + deltas ever since)
// decrypts byte-identically to a subscriber handed the full broadcast.
func TestDeltaPropertyRandomChurn(t *testing.T) {
	for _, groupSize := range []int{0, 3} {
		groupSize := groupSize
		t.Run(fmt.Sprintf("groupSize=%d", groupSize), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7 + int64(groupSize)))
			env := newDeltaEnv(t, 3, groupSize)
			var members []string
			for i := 0; i < 8; i++ {
				members = append(members, env.join(t, 1+rng.Intn(3)))
			}
			watcherNym := env.join(t, 3) // holds every condition, never revoked
			watcher := env.subscriber(t, watcherNym)

			b, err := env.pub.Publish(env.doc)
			if err != nil {
				t.Fatal(err)
			}
			if err := watcher.ApplySnapshot(b); err != nil {
				t.Fatal(err)
			}
			prev := b

			for step := 0; step < 25; step++ {
				switch op := rng.Intn(4); {
				case op == 0:
					members = append(members, env.join(t, 1+rng.Intn(3)))
				case op == 1 && len(members) > 0:
					i := rng.Intn(len(members))
					if err := env.pub.RevokeSubscription(members[i]); err != nil {
						t.Fatal(err)
					}
					members = append(members[:i], members[i+1:]...)
				case op == 2 && len(members) > 0:
					i := rng.Intn(len(members))
					nym := members[i]
					// Revoke one credential the nym actually holds; revoking
					// its last cell removes the row, so drop it from the
					// member pool then.
					for cond := range env.pub.reg.rowCopy(nym) {
						if err := env.pub.RevokeCredential(nym, cond); err != nil {
							t.Fatal(err)
						}
						break
					}
					if env.pub.reg.rowCopy(nym) == nil {
						members = append(members[:i], members[i+1:]...)
					}
				default:
					// publish with no table change (steady state)
				}

				cur, err := env.pub.Publish(env.doc)
				if err != nil {
					t.Fatal(err)
				}
				d, err := Diff(prev, cur)
				if err != nil {
					t.Fatal(err)
				}
				if err := watcher.ApplyDelta(d); err != nil {
					t.Fatal(err)
				}
				if got := watcher.Current("doc").Epoch; got != cur.Epoch {
					t.Fatalf("step %d: patched state at epoch %d, want %d", step, got, cur.Epoch)
				}

				fresh := env.subscriber(t, watcherNym)
				want, err := fresh.Decrypt(cur)
				if err != nil {
					t.Fatal(err)
				}
				got, err := watcher.DecryptCurrent("doc")
				if err != nil {
					t.Fatal(err)
				}
				if !decryptEq(got, want) {
					t.Fatalf("step %d: delta-patched decrypt differs from full fetch (%d vs %d subdocs)", step, len(got), len(want))
				}
				if len(want) != 3 {
					t.Fatalf("step %d: watcher decrypted %d of 3 subdocs from the full broadcast", step, len(want))
				}
				prev = cur
			}
		})
	}
}

// TestDeltaSkipsBaseEpoch asserts Apply refuses a delta whose base does not
// match the held state and that Diff validates its inputs.
func TestDeltaValidation(t *testing.T) {
	env := newDeltaEnv(t, 2, 0)
	env.join(t, 2)
	b1, err := env.pub.Publish(env.doc)
	if err != nil {
		t.Fatal(err)
	}
	env.join(t, 1)
	b2, err := env.pub.Publish(env.doc)
	if err != nil {
		t.Fatal(err)
	}
	b3, err := env.pub.Publish(env.doc)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := Diff(b2, b2); err == nil {
		t.Error("Diff accepted equal epochs")
	}
	if _, err := Diff(b2, b1); err == nil {
		t.Error("Diff accepted a backwards epoch pair")
	}

	d23, err := Diff(b2, b3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d23.Apply(b1); err == nil {
		t.Error("Apply accepted a mismatched base epoch")
	}
	got, err := d23.Apply(b2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != b3.Epoch {
		t.Errorf("applied state at epoch %d, want %d", got.Epoch, b3.Epoch)
	}
}

// TestDeltaRejectsOtherGeneration pins the publisher-restart protection: a
// subscriber holding state from one publisher incarnation must reject a
// delta from another even when the epoch numbers collide (restarted
// publishers renumber epochs from 1).
func TestDeltaRejectsOtherGeneration(t *testing.T) {
	envA := newDeltaEnv(t, 2, 0)
	envA.join(t, 2)
	a1, err := envA.pub.Publish(envA.doc)
	if err != nil {
		t.Fatal(err)
	}

	// "Restarted" publisher: same policies, fresh incarnation, its own
	// epoch numbering.
	envB := newDeltaEnv(t, 2, 0)
	envB.join(t, 2)
	b1, err := envB.pub.Publish(envB.doc)
	if err != nil {
		t.Fatal(err)
	}
	envB.join(t, 1)
	b2, err := envB.pub.Publish(envB.doc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Diff(b1, b2)
	if err != nil {
		t.Fatal(err)
	}

	s, err := NewSubscriber("pn-gen")
	if err != nil {
		t.Fatal(err)
	}
	// State from incarnation A at an epoch that numerically matches the
	// delta's base from incarnation B.
	stale := *a1
	stale.Epoch = d.BaseEpoch
	if err := s.ApplySnapshot(&stale); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyDelta(d); !errors.Is(err, ErrDeltaBaseMismatch) {
		t.Fatalf("cross-generation delta applied: err=%v", err)
	}
}

// TestSteadyStateDeltaIsEmpty asserts the headline dissemination property:
// a publish with no membership or content change produces a delta with no
// configuration patches and no items — the steady-state stream cost is the
// frame overhead alone.
func TestSteadyStateDeltaIsEmpty(t *testing.T) {
	for _, groupSize := range []int{0, 3} {
		env := newDeltaEnv(t, 3, groupSize)
		for i := 0; i < 6; i++ {
			env.join(t, 1+i%3)
		}
		b1, err := env.pub.Publish(env.doc)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := env.pub.Publish(env.doc)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Diff(b1, b2)
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Configs) != 0 || len(d.Items) != 0 || len(d.RemovedConfigs) != 0 || len(d.RemovedItems) != 0 || d.PoliciesChanged {
			t.Errorf("groupSize=%d: steady-state delta not empty: %d config patches, %d items", groupSize, len(d.Configs), len(d.Items))
		}
		// The carried-forward ciphertexts are byte-identical.
		for i := range b2.Items {
			if !bytes.Equal(b1.Items[i].Ciphertext, b2.Items[i].Ciphertext) {
				t.Errorf("steady-state republish re-encrypted item %q", b2.Items[i].Subdoc)
			}
		}
	}
}

// TestSingleLeaveDeltaShipsOneShard asserts the grouped incremental claim
// end to end at the delta layer: after one leave, the delta's grouped
// patches ship exactly the re-solved shard sub-headers (one per affected
// configuration), referencing every clean shard from the base.
func TestSingleLeaveDeltaShipsOneShard(t *testing.T) {
	env := newDeltaEnv(t, 1, 4)
	var nyms []string
	for i := 0; i < 16; i++ {
		nyms = append(nyms, env.join(t, 1))
	}
	b1, err := env.pub.Publish(env.doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.pub.RevokeSubscription(nyms[3]); err != nil {
		t.Fatal(err)
	}
	b2, err := env.pub.Publish(env.doc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Diff(b1, b2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Configs) != 1 {
		t.Fatalf("single leave patched %d configurations, want 1", len(d.Configs))
	}
	gp := d.Configs[0].Grouped
	if gp == nil {
		t.Fatal("expected a grouped patch")
	}
	if len(gp.Headers) != 1 {
		t.Errorf("single leave shipped %d sub-headers, want 1", len(gp.Headers))
	}
	if len(gp.From) != 4 {
		t.Errorf("patch reconstructs %d shards, want 4", len(gp.From))
	}
	kept := 0
	for _, from := range gp.From {
		if from >= 0 {
			kept++
		}
	}
	if kept != 3 {
		t.Errorf("patch keeps %d base shards, want 3", kept)
	}
	// The leaver cannot decrypt the patched state; a member can.
	member := env.subscriber(t, nyms[0])
	if err := member.ApplySnapshot(b1); err != nil {
		t.Fatal(err)
	}
	if err := member.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if got, err := member.DecryptCurrent("doc"); err != nil || len(got) != 1 {
		t.Errorf("member decrypted %d subdocs after patch (err=%v)", len(got), err)
	}
	leaver := env.subscriber(t, nyms[3])
	if got, _ := leaver.Decrypt(b2); len(got) != 0 {
		t.Errorf("leaver decrypted %d subdocs after revocation", len(got))
	}
}

// TestKEVCacheSurvivesDeltaPatches asserts the §VIII-D receiver cache keeps
// paying across patches: a member of a clean shard re-derives its key after
// a delta without hashing a single fresh KEV.
func TestKEVCacheSurvivesDeltaPatches(t *testing.T) {
	env := newDeltaEnv(t, 1, 4)
	var nyms []string
	for i := 0; i < 16; i++ {
		nyms = append(nyms, env.join(t, 1))
	}
	b1, err := env.pub.Publish(env.doc)
	if err != nil {
		t.Fatal(err)
	}
	member := env.subscriber(t, nyms[0])
	if err := member.ApplySnapshot(b1); err != nil {
		t.Fatal(err)
	}
	if _, err := member.DecryptCurrent("doc"); err != nil {
		t.Fatal(err)
	}
	base := member.kevMisses

	// Revoke someone from a different shard than nyms[0] (sticky least-full
	// assignment puts pn-0 and pn-3 in different groups of 4 among 16 rows
	// only if their join order differs by ≥4; pick the last joiner).
	if err := env.pub.RevokeSubscription(nyms[15]); err != nil {
		t.Fatal(err)
	}
	b2, err := env.pub.Publish(env.doc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Diff(b1, b2)
	if err != nil {
		t.Fatal(err)
	}
	if err := member.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if got, err := member.DecryptCurrent("doc"); err != nil || len(got) != 1 {
		t.Fatalf("member decrypted %d subdocs after patch (err=%v)", len(got), err)
	}
	if member.kevMisses != base {
		t.Errorf("clean-shard member hashed %d fresh KEVs across a delta patch, want 0", member.kevMisses-base)
	}
}

// TestItemRevTracksPlaintext asserts a content-only change (same membership)
// re-ships exactly the changed item.
func TestItemRevTracksPlaintext(t *testing.T) {
	env := newDeltaEnv(t, 2, 0)
	env.join(t, 2)
	b1, err := env.pub.Publish(env.doc)
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := document.New("doc",
		document.Subdocument{Name: "sd0", Content: []byte("content of sd0")},
		document.Subdocument{Name: "sd1", Content: []byte("EDITED")},
	)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := env.pub.Publish(doc2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Diff(b1, b2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Configs) != 0 {
		t.Errorf("content-only change patched %d configurations", len(d.Configs))
	}
	if len(d.Items) != 1 || d.Items[0].Subdoc != "sd1" {
		t.Fatalf("content-only change shipped items %+v, want exactly sd1", d.Items)
	}
}

// TestThrowawayConfigStaysQuiet: configurations nobody can access (fresh
// random key, no header) must not churn the delta stream.
func TestThrowawayConfigStaysQuiet(t *testing.T) {
	env := newDeltaEnv(t, 2, 0)
	env.join(t, 1) // qualifies only for acp0; acp1's configuration is inaccessible
	b1, err := env.pub.Publish(env.doc)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := env.pub.Publish(env.doc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Diff(b1, b2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Configs) != 0 || len(d.Items) != 0 {
		t.Errorf("throwaway configuration churned the delta: %d patches, %d items", len(d.Configs), len(d.Items))
	}
}

// TestWrapSecrecyAcrossDelta: a patched grouped header must still deliver
// the fresh configuration key only through shard membership — the wraps in
// the patch are masked under group keys the leaver cannot derive.
func TestWrapSecrecyAcrossDelta(t *testing.T) {
	env := newDeltaEnv(t, 1, 4)
	var nyms []string
	for i := 0; i < 8; i++ {
		nyms = append(nyms, env.join(t, 1))
	}
	b1, err := env.pub.Publish(env.doc)
	if err != nil {
		t.Fatal(err)
	}
	leaver := nyms[1]
	leaverCSS := env.css[leaver]["attr0 >= 1"]
	if err := env.pub.RevokeSubscription(leaver); err != nil {
		t.Fatal(err)
	}
	b2, err := env.pub.Publish(env.doc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Diff(b1, b2)
	if err != nil {
		t.Fatal(err)
	}
	member := env.subscriber(t, nyms[0])
	if err := member.ApplySnapshot(b1); err != nil {
		t.Fatal(err)
	}
	if err := member.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	state := member.Current("doc")
	for _, ci := range state.Configs {
		if ci.Grouped == nil {
			continue
		}
		if _, _, err := core.DeriveKeyGrouped([]core.CSS{leaverCSS}, ci.Grouped, func(k ff64.Elem) bool {
			key := core.ExpandKey(k)
			for _, it := range state.Items {
				if it.Config == ci.Key {
					if _, err := sym.Decrypt(key, it.Ciphertext); err == nil {
						return true
					}
				}
			}
			return false
		}); err == nil {
			t.Error("revoked subscriber derived the configuration key from the patched header")
		}
	}
}
