package pubsub

import (
	"encoding/json"
	"fmt"

	"ppcd/internal/core"
	"ppcd/internal/ff64"
)

// stateFile is the JSON shape of an exported publisher state. Only the CSS
// table is state: policies and parameters are configuration, re-supplied at
// construction.
type stateFile struct {
	Version int                          `json:"version"`
	Table   map[string]map[string]uint64 `json:"table"`
}

// ExportState serializes the publisher's CSS table T so it can be persisted
// across restarts. The table is SECRET material (paper §V-B: "Table T …
// should be protected") — callers must store it accordingly (e.g. mode
// 0600, encrypted at rest).
func (p *Publisher) ExportState() ([]byte, error) {
	return json.Marshal(stateFile{Version: 1, Table: p.reg.export()})
}

// ImportState restores a previously exported CSS table, replacing the
// current one. Conditions that no longer exist in the publisher's policy set
// are dropped (with no error: policies may legitimately have changed —
// §V-C: "access control policies can be flexibly updated … without changing
// any information stored at Subs"). Every configuration is treated as
// membership-dirty afterwards, so the next Publish rekeys everything.
func (p *Publisher) ImportState(data []byte) error {
	var sf stateFile
	if err := json.Unmarshal(data, &sf); err != nil {
		return fmt.Errorf("pubsub: parsing state: %w", err)
	}
	if sf.Version != 1 {
		return fmt.Errorf("pubsub: unsupported state version %d", sf.Version)
	}
	table := make(map[string]map[string]core.CSS, len(sf.Table))
	for nym, row := range sf.Table {
		if nym == "" {
			return fmt.Errorf("pubsub: state contains empty pseudonym")
		}
		out := make(map[string]core.CSS, len(row))
		for cond, css := range row {
			if _, known := p.condByID[cond]; !known {
				continue // policy set changed; stale column
			}
			if css == 0 || css >= ff64.Modulus {
				return fmt.Errorf("pubsub: state contains invalid CSS for (%q, %q)", nym, cond)
			}
			out[cond] = core.CSS(css)
		}
		if len(out) > 0 {
			table[nym] = out
		}
	}
	p.reg.replace(table)
	p.keys.reset()
	return nil
}
