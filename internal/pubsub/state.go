package pubsub

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"ppcd/internal/core"
	"ppcd/internal/ff64"
)

// This file is the publisher's durable-state surface: state export/import
// (the v2 binary format carrying everything a warm restart needs, plus the
// legacy v1 JSON table dump), and the journal event stream the internal/store
// WAL records so mutations between snapshots survive a crash.
//
// State is SECRET material (paper §V-B: "Table T … should be protected").
// The exported bytes are plaintext serialization; persisting them is the
// store package's job, which seals them with AEAD under an operator key.

// Shape limits applied to imported state and replayed events — the same
// hardening discipline the transport applies to network input, because a
// state file is an integrity boundary too (a restored publisher must not be
// corruptible into unbounded allocations by a damaged or crafted file).
const (
	// maxStateBytes caps the total imported state size.
	maxStateBytes = 1 << 30
	// maxStateNymLen caps one pseudonym.
	maxStateNymLen = 1024
	// maxStateCondLen caps one condition ID.
	maxStateCondLen = 4096
	// maxStateCount clamps generic element counts (nyms, cache entries,
	// policies, items) before they drive allocations.
	maxStateCount = 1 << 22
	// maxStateRowCells clamps the cells of one pseudonym row.
	maxStateRowCells = 1 << 16
)

// stateFile is the JSON shape of a legacy v1 exported state: the CSS table
// only.
type stateFile struct {
	Version int                          `json:"version"`
	Table   map[string]map[string]uint64 `json:"table"`
}

// ExportState serializes the publisher's full durable state (v2): table T,
// per-policy membership versions, sticky group assignments, the epoch
// counter and incarnation generation, the rekey engine's cached builds, and
// the per-document diff bases. A publisher restored from it resumes exactly
// where it left off: clean configurations keep their cached headers (the
// first post-restart publish performs zero null-space solves on an unchanged
// table) and epoch numbering continues, so streaming subscribers catch up
// with deltas instead of re-downloading snapshots.
//
// The returned bytes are SECRET (CSS cells, configuration keys) and
// unencrypted — store them through internal/store, which seals them with
// AEAD under an operator key, or protect them equivalently.
func (p *Publisher) ExportState() ([]byte, error) {
	return p.exportStateV2()
}

// ImportState restores a previously exported publisher state, accepting both
// the v2 binary format (full restore: table, assignments, epoch, generation,
// engine caches, diff bases) and the legacy v1 JSON table dump.
//
// Conditions that no longer exist in the publisher's policy set are dropped
// (no error: policies may legitimately have changed — §V-C). The v1 path
// replaces the table through a per-condition diff: only policies whose
// condition membership actually changed are marked dirty, so importing a
// table identical to the current one triggers no rebuild at all.
//
// An import is a wholesale mutation the event journal cannot express, so
// when a journal supporting snapshots is attached (internal/store is), the
// imported state is made durable through an immediate snapshot — otherwise
// a crash before the next scheduled snapshot would recover the pre-import
// table while replaying post-import epochs.
func (p *Publisher) ImportState(data []byte) error {
	if len(data) > maxStateBytes {
		return fmt.Errorf("pubsub: state of %d bytes exceeds the %d limit", len(data), maxStateBytes)
	}
	var err error
	if bytes.HasPrefix(data, stateMagicV2) {
		err = p.importStateV2(data)
	} else {
		err = p.importStateV1(data)
	}
	if err != nil {
		return err
	}
	p.jmu.RLock()
	j := p.journal
	p.jmu.RUnlock()
	if snap, ok := j.(SnapshotJournal); ok {
		if err := snap.Snapshot(p); err != nil {
			return fmt.Errorf("pubsub: persisting imported state: %w", err)
		}
	}
	return nil
}

func (p *Publisher) importStateV1(data []byte) error {
	var sf stateFile
	if err := json.Unmarshal(data, &sf); err != nil {
		return fmt.Errorf("pubsub: parsing state: %w", err)
	}
	if sf.Version != 1 {
		return fmt.Errorf("pubsub: unsupported state version %d", sf.Version)
	}
	if len(sf.Table) > maxStateCount {
		return fmt.Errorf("pubsub: state table of %d rows exceeds limits", len(sf.Table))
	}
	table := make(map[string]map[string]core.CSS, len(sf.Table))
	for nym, row := range sf.Table {
		if err := validateStateNym(nym); err != nil {
			return err
		}
		if len(row) > maxStateRowCells {
			return fmt.Errorf("pubsub: state row for %q has %d cells", nym, len(row))
		}
		out := make(map[string]core.CSS, len(row))
		for cond, css := range row {
			if len(cond) > maxStateCondLen {
				return fmt.Errorf("pubsub: state condition ID of %d bytes exceeds limits", len(cond))
			}
			if _, known := p.condByID[cond]; !known {
				continue // policy set changed; stale column
			}
			if css == 0 || css >= ff64.Modulus {
				return fmt.Errorf("pubsub: state contains invalid CSS for (%q, %q)", nym, cond)
			}
			out[cond] = core.CSS(css)
		}
		if len(out) > 0 {
			table[nym] = out
		}
	}
	p.reg.replaceDiff(table)
	return nil
}

func validateStateNym(nym string) error {
	if nym == "" {
		return errors.New("pubsub: state contains empty pseudonym")
	}
	if len(nym) > maxStateNymLen {
		return fmt.Errorf("pubsub: state pseudonym of %d bytes exceeds limits", len(nym))
	}
	return nil
}

// StateEventKind discriminates journal events.
type StateEventKind uint8

// Journal event kinds: the table mutations plus the epoch bump of a publish
// (journaling epochs keeps the counter monotonic across a crash even when
// publishes happened after the last snapshot, so a restarted publisher can
// never reuse an epoch number its subscribers have already seen under the
// same generation).
const (
	StateEventRegister StateEventKind = iota + 1
	StateEventRevokeSubscription
	StateEventRevokeCredential
	StateEventPublish
)

// StateEvent is one durable-journal entry: a registration (freshly drawn CSS
// cells for one pseudonym), a revocation, or a publish epoch bump. Register
// cells are SECRET material.
type StateEvent struct {
	Kind  StateEventKind
	Nym   string
	Cond  string              // StateEventRevokeCredential
	Cells map[string]core.CSS // StateEventRegister
	Doc   string              // StateEventPublish
	Epoch uint64              // StateEventPublish
}

// Journal receives every successful durable mutation for write-ahead
// logging. Append must make the event durable before returning; an error
// fails the triggering operation. internal/store implements it.
type Journal interface {
	Append(StateEvent) error
}

// BatchJournal is an optional Journal extension: AppendBatch makes several
// events durable atomically with one flush. RegisterBatch uses it to group-
// commit a whole batch's registrations instead of fsyncing per pseudonym.
type BatchJournal interface {
	Journal
	AppendBatch([]StateEvent) error
}

// SnapshotJournal is an optional Journal extension: a journal that can
// persist the publisher's full state. ImportState calls it after a
// successful import — a wholesale mutation the event stream cannot express —
// so the imported table is durable before the import returns.
type SnapshotJournal interface {
	Journal
	Snapshot(*Publisher) error
}

// CommitTicket is the pending half of one pipelined commit: Wait blocks
// until the commit's events are durable AND applied in-memory (nil), or the
// flush failed (non-nil; the events were neither persisted nor applied, as
// if the mutation never happened).
type CommitTicket interface {
	Wait() error
}

// CommitJournal is an optional Journal extension for pipelined group commit.
// Begin assigns the events their place in the journal order and enqueues
// them for a coalesced flush, returning immediately — the caller then drops
// the mutation lock and blocks on the ticket, so concurrent mutators share
// one write+fsync instead of serializing a flush each.
//
// Contract: Begin is called under the publisher's mutation lock for table
// mutations (journal order = apply order stays intact); apply runs exactly
// once per successful commit, in journal-sequence order, after the events
// are durable and before any of their tickets resolve — preserving the
// write-ahead discipline with visibility deferred to durability. On a flush
// failure apply never runs. internal/store implements it.
type CommitJournal interface {
	Journal
	Begin(evs []StateEvent, apply func()) (CommitTicket, error)
}

// SetJournal installs (or, with nil, removes) the publisher's durable
// journal. Install it before serving traffic; mutations occurring before the
// journal is attached are only captured by the next full snapshot.
func (p *Publisher) SetJournal(j Journal) {
	p.jmu.Lock()
	p.journal = j
	p.jmu.Unlock()
}

// Journal returns the installed journal (nil if none).
func (p *Publisher) Journal() Journal {
	p.jmu.RLock()
	defer p.jmu.RUnlock()
	return p.journal
}

// JournalBarrier runs fn at a moment when no new table mutation can enter
// the journal order (the mutation lock is held across fn). Snapshotters use
// it to capture the journal sequence their export will cover: a pipelined
// journal (CommitJournal) first drains its in-flight commits inside fn —
// applies run before acks, so after the drain every table mutation at or
// below the captured sequence is reflected in memory — then reads the
// sequence. Skipping those records on recovery can then never drop a
// mutation. (Publish epoch bumps don't need the barrier: the counter is
// advanced before the event is journaled and read under the same lock the
// export takes, so an unflushed publish at or below the captured sequence is
// still covered.)
func (p *Publisher) JournalBarrier(fn func()) {
	p.mutMu.Lock()
	defer p.mutMu.Unlock()
	fn()
}

func (p *Publisher) journalAppend(ev StateEvent) error {
	p.jmu.RLock()
	j := p.journal
	p.jmu.RUnlock()
	if j == nil {
		return nil
	}
	if err := j.Append(ev); err != nil {
		return fmt.Errorf("pubsub: journaling state event: %w", err)
	}
	return nil
}

// commitMutation write-ahead-commits evs and runs apply. Against a
// CommitJournal the append is pipelined: the events enter the journal order
// under the mutation lock, the lock is released, and the caller blocks only
// on the shared group flush — so concurrent mutators coalesce into one
// write+fsync. Against a plain Journal (or none) the whole commit runs
// synchronously under the mutation lock, exactly as before.
//
// check runs under the mutation lock before anything is journaled; a non-nil
// return aborts the mutation. apply's in-memory effect becomes visible only
// once the events are durable (write-ahead), and journal order always equals
// apply order.
func (p *Publisher) commitMutation(check func() error, apply func(), evs ...StateEvent) error {
	p.jmu.RLock()
	j := p.journal
	p.jmu.RUnlock()
	if cj, ok := j.(CommitJournal); ok {
		p.mutMu.Lock()
		if check != nil {
			if err := check(); err != nil {
				p.mutMu.Unlock()
				return err
			}
		}
		t, err := cj.Begin(evs, apply)
		p.mutMu.Unlock()
		if err == nil {
			err = t.Wait()
		}
		if err != nil {
			return fmt.Errorf("pubsub: journaling state event: %w", err)
		}
		return nil
	}
	p.mutMu.Lock()
	defer p.mutMu.Unlock()
	if check != nil {
		if err := check(); err != nil {
			return err
		}
	}
	for _, ev := range evs {
		if err := p.journalAppend(ev); err != nil {
			return err
		}
	}
	apply()
	return nil
}

// journalPublish journals a publish epoch bump. Unlike table mutations it
// needs no mutation-lock ordering — the epoch counter is advanced in memory
// before the event is journaled and replay is a max() — so against a
// CommitJournal it simply joins whatever group flush is forming.
func (p *Publisher) journalPublish(ev StateEvent) error {
	p.jmu.RLock()
	j := p.journal
	p.jmu.RUnlock()
	if j == nil {
		return nil
	}
	if cj, ok := j.(CommitJournal); ok {
		t, err := cj.Begin([]StateEvent{ev}, func() {})
		if err == nil {
			err = t.Wait()
		}
		if err != nil {
			return fmt.Errorf("pubsub: journaling state event: %w", err)
		}
		return nil
	}
	if err := j.Append(ev); err != nil {
		return fmt.Errorf("pubsub: journaling state event: %w", err)
	}
	return nil
}

// ApplyStateEvent replays one journal event onto the publisher (WAL
// recovery). Replay is idempotent and never journals: re-applying an event
// already reflected in the restored snapshot changes nothing — a register
// with identical cells bumps no membership version, a revocation of an
// absent row is a no-op, an epoch bump is a max().
func (p *Publisher) ApplyStateEvent(ev StateEvent) error {
	switch ev.Kind {
	case StateEventRegister:
		if err := validateStateNym(ev.Nym); err != nil {
			return err
		}
		if len(ev.Cells) > maxStateRowCells {
			return fmt.Errorf("pubsub: event row for %q has %d cells", ev.Nym, len(ev.Cells))
		}
		cells := make(map[string]core.CSS, len(ev.Cells))
		for cond, css := range ev.Cells {
			if len(cond) > maxStateCondLen {
				return fmt.Errorf("pubsub: event condition ID of %d bytes exceeds limits", len(cond))
			}
			if _, known := p.condByID[cond]; !known {
				continue // policy set changed since the event was journaled
			}
			if css == 0 || uint64(css) >= ff64.Modulus {
				return fmt.Errorf("pubsub: event contains invalid CSS for (%q, %q)", ev.Nym, cond)
			}
			cells[cond] = css
		}
		p.reg.setCellsDiff(ev.Nym, cells)
		return nil
	case StateEventRevokeSubscription:
		if err := validateStateNym(ev.Nym); err != nil {
			return err
		}
		// Ignore an unknown pseudonym: the revocation may already be
		// reflected in the snapshot the WAL is replayed over.
		_ = p.reg.revokeSubscription(ev.Nym)
		return nil
	case StateEventRevokeCredential:
		if err := validateStateNym(ev.Nym); err != nil {
			return err
		}
		if len(ev.Cond) > maxStateCondLen {
			return fmt.Errorf("pubsub: event condition ID of %d bytes exceeds limits", len(ev.Cond))
		}
		_ = p.reg.revokeCredential(ev.Nym, ev.Cond)
		return nil
	case StateEventPublish:
		p.pubMu.Lock()
		if ev.Epoch > p.epoch {
			p.epoch = ev.Epoch
		}
		p.pubMu.Unlock()
		return nil
	default:
		return fmt.Errorf("pubsub: unknown state event kind %d", ev.Kind)
	}
}

// Generation returns the publisher's incarnation stamp: freshly random for a
// new publisher, restored by a v2 state import so deltas survive restarts.
func (p *Publisher) Generation() uint64 {
	p.pubMu.Lock()
	defer p.pubMu.Unlock()
	return p.gen
}

// LastBroadcasts returns the most recent broadcast of every document this
// publisher (incarnation) has published or restored, in deterministic
// document-name order. After a warm restart, feeding them to the transport
// server re-seeds its retention ring, so reconnecting subscribers holding
// pre-restart epochs catch up with deltas instead of snapshots.
func (p *Publisher) LastBroadcasts() []*Broadcast {
	p.pubMu.Lock()
	defer p.pubMu.Unlock()
	names := make([]string, 0, len(p.lastPub))
	for name := range p.lastPub {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*Broadcast, 0, len(names))
	for _, name := range names {
		out = append(out, p.lastPub[name].b)
	}
	return out
}

// ResetRekeyCache drops every cached ACV build, forcing the next Publish to
// re-solve all configurations (benchmarking the full-rebuild regime; state
// imports no longer do this implicitly).
func (p *Publisher) ResetRekeyCache() { p.keys.reset() }
