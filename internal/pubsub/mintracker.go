package pubsub

import "math/bits"

// minTracker answers the grouping layer's hot query — "which group has the
// fewest members among those with spare capacity, lowest group number on
// ties?" — in (amortized) constant time. The previous implementation scanned
// the whole occupancy slice per arrival, O(groups) per join; at a million
// rows with small groups that scan dominated churn handling.
//
// The structure is a bucket per occupancy level 0..cap: a bitset of group
// numbers at that occupancy plus a one-bit-per-word summary so the lowest
// set bit is found with two TrailingZeros64 steps. minOcc tracks a lower
// bound on the lowest non-empty assignable bucket; it only decreases when a
// group enters a lower bucket and is advanced lazily in least(), so the
// amortized cost per occupancy move is O(1).
type minTracker struct {
	cap     int
	cnt     []int      // occupancy → number of groups at that occupancy
	occBits [][]uint64 // occupancy → bitset of group numbers
	occSum  [][]uint64 // occupancy → bit w set iff occBits[occ][w] != 0
	minOcc  int
}

func newMinTracker(capacity int) *minTracker {
	return &minTracker{
		cap:     capacity,
		cnt:     make([]int, capacity+1),
		occBits: make([][]uint64, capacity+1),
		occSum:  make([][]uint64, capacity+1),
		minOcc:  capacity + 1,
	}
}

func (m *minTracker) set(occ, gid int) {
	w, b := gid>>6, uint(gid&63)
	bs := m.occBits[occ]
	if w >= len(bs) {
		nb := make([]uint64, w+1)
		copy(nb, bs)
		bs = nb
		m.occBits[occ] = bs
	}
	bs[w] |= 1 << b
	sw := w >> 6
	sum := m.occSum[occ]
	if sw >= len(sum) {
		ns := make([]uint64, sw+1)
		copy(ns, sum)
		sum = ns
		m.occSum[occ] = sum
	}
	sum[sw] |= 1 << uint(w&63)
	m.cnt[occ]++
	if occ < m.minOcc {
		m.minOcc = occ
	}
}

func (m *minTracker) unset(occ, gid int) {
	w, b := gid>>6, uint(gid&63)
	bs := m.occBits[occ]
	bs[w] &^= 1 << b
	if bs[w] == 0 {
		m.occSum[occ][w>>6] &^= 1 << uint(w&63)
	}
	m.cnt[occ]--
}

// addAt registers group gid at occupancy occ (state (re)construction and
// new-group creation).
func (m *minTracker) addAt(gid, occ int) { m.set(occ, gid) }

// move records that gid's occupancy changed from `from` to `to`.
func (m *minTracker) move(gid, from, to int) {
	if from == to {
		return
	}
	m.unset(from, gid)
	m.set(to, gid)
}

// least returns the lowest-numbered group among those with minimal
// occupancy below capacity, or ok=false when every group is full (or none
// exists).
func (m *minTracker) least() (int, bool) {
	for m.minOcc < m.cap && m.cnt[m.minOcc] == 0 {
		m.minOcc++
	}
	if m.minOcc >= m.cap {
		return 0, false
	}
	for sw, sv := range m.occSum[m.minOcc] {
		if sv == 0 {
			continue
		}
		w := sw<<6 + bits.TrailingZeros64(sv)
		return w<<6 + bits.TrailingZeros64(m.occBits[m.minOcc][w]), true
	}
	return 0, false // unreachable while cnt is consistent
}
