package pubsub

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/bits"
	"sort"

	"ppcd/internal/codec"
	"ppcd/internal/core"
	"ppcd/internal/ff64"
)

// Segmented state (v2s): the same durable publisher state as the monolithic
// v2 blob, split into independently sealable segments so a snapshot after
// churn rewrites only what changed and recovery decodes in parallel:
//
//   - TABLE segments cover contiguous columnar slot ranges of table T
//     (columnar.go). Live slots never move (compact only recycles dead
//     slots), so the per-slot dirty bitmap the registry maintains maps
//     straight onto "which segments must be rewritten". Each row carries its
//     cells AND its per-policy sticky group IDs — assignment changes re-dirty
//     the row (grouping.go) — so a restored assignment is exact, not
//     re-derived.
//   - CACHE segments partition the engine's exported cache entries into
//     hash buckets by entry ID. Each bucket has an identity digest (over
//     ID, content signature, key material — all of which change on any
//     re-solve); an unchanged digest means the on-disk bucket is still
//     byte-equivalent in meaning and is carried forward unencoded.
//   - One META segment holds everything small: epoch, generation, membership
//     versions, per-policy group-universe lengths, and the per-document diff
//     bases (whose header references resolve into the cache segments).
//
// Segment payloads are plaintext here — internal/store seals each one and
// binds the set together under a manifest. Payload shape is NOT required to
// be deterministic across exports (the store records content digests at
// write time); only the monolithic v2 blob keeps that pin.

// DefaultSegmentSlots is the default table-slot span of one table segment.
// At ~100 B/row a segment is a few hundred KB: small enough that single-row
// churn stays cheap, large enough that a million-row table needs only a few
// hundred files.
const DefaultSegmentSlots = 4096

// segPayloadVersion versions every segment payload independently of the
// store's framing.
const segPayloadVersion = 1

// SegmentGeometry is the shape of one segmented export.
type SegmentGeometry struct {
	SegSlots  int // table slots per table segment
	TableSegs int
	CacheSegs int
}

// SegmentBase identifies the previous DURABLY INSTALLED segmented snapshot.
// The store passes it back into ExportStateSegments so the export can skip
// clean segments; after any failed install the store must discard it (the
// dirty bits consumed by the failed export are gone, so only a full export
// is sound).
type SegmentBase struct {
	Geometry     SegmentGeometry
	TabGen       uint64
	CacheDigests [][32]byte
}

// SegmentExport is one segmented state export. Table and Cache hold only the
// segments that must be (re)written — all of them when Full. CacheDigests
// always covers every bucket (the store records them in the manifest for the
// next export's base).
type SegmentExport struct {
	Geometry     SegmentGeometry
	TabGen       uint64
	Full         bool
	Meta         []byte
	Table        map[int][]byte
	Cache        map[int][]byte
	CacheDigests [][32]byte
}

// ExportStateSegments exports the publisher state as segments, rewriting
// only segments dirtied since base (nil base, a geometry change, or a
// wholesale table replacement since base forces a full export). Consuming
// the registry's dirty bitmap is destructive: the caller owns persisting
// every returned segment or falling back to a full export next time.
//
// The returned payloads are SECRET plaintext, like ExportState's blob.
func (p *Publisher) ExportStateSegments(segSlots int, base *SegmentBase) (*SegmentExport, error) {
	if segSlots <= 0 {
		segSlots = DefaultSegmentSlots
	}
	r := p.reg

	cfgs, shards, grouped := p.keys.engine.ExportCache()
	sort.Slice(cfgs, func(i, j int) bool { return cfgs[i].ID < cfgs[j].ID })
	sort.Slice(shards, func(i, j int) bool { return shards[i].ID < shards[j].ID })
	sort.Slice(grouped, func(i, j int) bool { return grouped[i].ID < grouped[j].ID })

	// grpMu held across the whole export: assignments, group-universe
	// lengths and the rows they describe are read as one consistent unit
	// (lock order grpMu → mu → pubMu, consistent with every other path).
	r.grpMu.Lock()
	defer r.grpMu.Unlock()

	// Steal the dirty bitmap and capture geometry under the write lock.
	// Mutations landing after the steal re-accumulate for the next snapshot;
	// the WAL records they journal sit above the store's captured sequence,
	// so replay covers them regardless of whether this export's later row
	// reads happened to observe them.
	r.mu.Lock()
	tabGen := r.tabGen
	slotsLen := len(r.tab.nyms)
	dirtyBits := r.tab.stealDirty()
	r.mu.Unlock()

	tableSegs := (slotsLen + segSlots - 1) / segSlots
	full := base == nil ||
		base.TabGen != tabGen ||
		base.Geometry.SegSlots != segSlots ||
		base.Geometry.TableSegs > tableSegs ||
		base.Geometry.CacheSegs <= 0
	// Cache bucket geometry is independent of the table carry: when the cache
	// has grown enough to deserve more buckets, re-bucket it inside this
	// otherwise-incremental export (every bucket rewritten once — the base
	// digests are not comparable across a re-partition) rather than pinning
	// the base's count forever. A snapshot taken before the first publish
	// would otherwise lock a near-empty cache's 8 coarse buckets in place and
	// make every later churn snapshot rewrite the whole cache. Shrink keeps
	// the base count: extra small buckets are harmless, and growing only
	// monotonically prevents re-partition flapping around a threshold.
	cacheSegs := cacheBucketCount(len(cfgs) + len(shards) + len(grouped))
	rebucket := full
	if !full {
		if cacheSegs <= base.Geometry.CacheSegs {
			cacheSegs = base.Geometry.CacheSegs
		} else {
			rebucket = true
		}
	}

	exp := &SegmentExport{
		Geometry: SegmentGeometry{SegSlots: segSlots, TableSegs: tableSegs, CacheSegs: cacheSegs},
		TabGen:   tabGen,
		Full:     full,
		Table:    make(map[int][]byte),
		Cache:    make(map[int][]byte),
	}

	// Dirty table segments: every stolen bit's segment, plus any segment
	// range that did not exist at the base (appended slots mark themselves,
	// so this is belt-and-braces for the geometry edge).
	dirtySegs := make(map[int]bool)
	if full {
		for i := 0; i < tableSegs; i++ {
			dirtySegs[i] = true
		}
	} else {
		for w, mask := range dirtyBits {
			for mask != 0 {
				slot := w*64 + bits.TrailingZeros64(mask)
				mask &= mask - 1
				if slot < slotsLen {
					dirtySegs[slot/segSlots] = true
				}
			}
		}
		for i := base.Geometry.TableSegs; i < tableSegs; i++ {
			dirtySegs[i] = true
		}
	}

	polIDs := make([]string, 0, len(r.grp))
	for id := range r.grp {
		polIDs = append(polIDs, id)
	}
	sort.Strings(polIDs)

	r.mu.RLock()
	for seg := range dirtySegs {
		lo := seg * segSlots
		hi := lo + segSlots
		if n := len(r.tab.nyms); hi > n {
			hi = n
		}
		exp.Table[seg] = r.encodeTableSegment(lo, hi, polIDs)
	}
	r.mu.RUnlock()

	// Cache buckets: partition deterministically by entry ID, digest each
	// bucket's identity, and re-encode only buckets whose digest moved.
	cfgB, shardB, grpB := partitionCacheEntries(cacheSegs, cfgs, shards, grouped)
	exp.CacheDigests = make([][32]byte, cacheSegs)
	for b := 0; b < cacheSegs; b++ {
		exp.CacheDigests[b] = cacheBucketDigest(cfgs, shards, grouped, cfgB[b], shardB[b], grpB[b])
		if !rebucket && b < len(base.CacheDigests) && base.CacheDigests[b] == exp.CacheDigests[b] {
			continue
		}
		exp.Cache[b] = encodeCacheBucket(cfgs, shards, grouped, cfgB[b], shardB[b], grpB[b])
	}

	exp.Meta = p.encodeMetaSegment(cfgs, grouped, polIDs)
	return exp, nil
}

// cacheBucketCount picks a power-of-two bucket count targeting ~16 entries
// per bucket, clamped to [8, 1024]. Cached shard builds are kilobytes each,
// so a K-shard churn rewrite costs ~K buckets × 16 entries — a sliver of the
// cache even at a million rows — while 1024 files stays filesystem-friendly.
func cacheBucketCount(entries int) int {
	b := 8
	for b < 1024 && b*16 < entries {
		b <<= 1
	}
	return b
}

// cacheBucketOf maps one entry ID (tagged by kind so the three cache levels
// hash independently) to its bucket.
func cacheBucketOf(kind byte, id string, nbuckets int) int {
	h := fnv.New64a()
	h.Write([]byte{kind})
	h.Write([]byte(id))
	return int(h.Sum64() & uint64(nbuckets-1))
}

func partitionCacheEntries(nbuckets int, cfgs []core.CachedConfig, shards []core.CachedShard, grouped []core.CachedGrouped) (cfgB, shardB, grpB [][]int) {
	cfgB = make([][]int, nbuckets)
	shardB = make([][]int, nbuckets)
	grpB = make([][]int, nbuckets)
	for i := range cfgs {
		b := cacheBucketOf('C', cfgs[i].ID, nbuckets)
		cfgB[b] = append(cfgB[b], i)
	}
	for i := range shards {
		b := cacheBucketOf('S', shards[i].ID, nbuckets)
		shardB[b] = append(shardB[b], i)
	}
	for i := range grouped {
		b := cacheBucketOf('G', grouped[i].ID, nbuckets)
		grpB[b] = append(grpB[b], i)
	}
	return
}

// cacheBucketDigest computes one bucket's identity digest. The tuple hashed
// per entry — ID, content signature, key material, rekey nonce, wraps and
// shard references — pins a specific solved build: signatures are content
// digests of the membership and keys/nonces are drawn fresh on every solve,
// so any re-solve (even one reproducing the same signature after a cache
// reset) moves the digest. Ungrouped configuration headers and inline shard
// fallbacks are hashed in full — they are few. Shard sub-headers are pinned
// by (Sig, Key) instead of content, which is what keeps this digest pass
// O(entries), not O(state bytes). Digests cover SECRET key material; the
// store persists them only inside the sealed manifest.
func cacheBucketDigest(cfgs []core.CachedConfig, shards []core.CachedShard, grouped []core.CachedGrouped, cfgIdx, shardIdx, grpIdx []int) [32]byte {
	h := sha256.New()
	var num [8]byte
	ws := func(s string) {
		binary.BigEndian.PutUint64(num[:], uint64(len(s)))
		h.Write(num[:])
		h.Write([]byte(s))
	}
	wu := func(v uint64) {
		binary.BigEndian.PutUint64(num[:], v)
		h.Write(num[:])
	}
	whdr := func(hd *core.Header) {
		wu(uint64(len(hd.X)))
		for _, e := range hd.X {
			wu(uint64(e))
		}
		wu(uint64(len(hd.Zs)))
		for _, z := range hd.Zs {
			wu(uint64(len(z)))
			h.Write(z)
		}
	}
	for _, i := range cfgIdx {
		c := &cfgs[i]
		h.Write([]byte{'C'})
		ws(c.ID)
		ws(c.Sig)
		wu(uint64(c.Key))
		whdr(c.Hdr)
	}
	for _, i := range shardIdx {
		s := &shards[i]
		h.Write([]byte{'S'})
		ws(s.ID)
		ws(s.Sig)
		wu(uint64(s.Key))
	}
	for _, i := range grpIdx {
		g := &grouped[i]
		h.Write([]byte{'G'})
		ws(g.ID)
		ws(g.Sig)
		wu(uint64(g.Key))
		wu(uint64(len(g.RekeyNonce)))
		h.Write(g.RekeyNonce)
		wu(uint64(len(g.Shards)))
		for _, sh := range g.Shards {
			wu(uint64(sh.Wrap))
			if sh.ShardID != "" {
				h.Write([]byte{'r'})
				ws(sh.ShardID)
			} else {
				h.Write([]byte{'i'})
				whdr(sh.Hdr)
			}
		}
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// encodeTableSegment encodes the live rows of slots [lo, hi): cells against
// a per-segment condition dictionary, sticky group IDs against a per-segment
// policy dictionary. Callers hold grpMu and at least the registry read lock.
func (r *registry) encodeTableSegment(lo, hi int, polIDs []string) []byte {
	w := &stateWriter{}
	w.u8(segPayloadVersion)

	type rowEnc struct {
		nym     string
		cells   [][2]uint64 // dict index, css
		assigns [][2]int    // policy dict index, gid
	}
	var (
		rows     []rowEnc
		condDict []string
		condIdx  = make(map[int]int) // global column → dict index
		polDict  []string
		polIdx   = make(map[string]int)
	)
	for s := lo; s < hi; s++ {
		nym := r.tab.nyms[s]
		if nym == "" {
			continue
		}
		re := rowEnc{nym: nym}
		for ci, v := range r.tab.row(int32(s)) {
			if v == 0 {
				continue
			}
			di, ok := condIdx[ci]
			if !ok {
				di = len(condDict)
				condIdx[ci] = di
				condDict = append(condDict, r.tab.conds[ci])
			}
			re.cells = append(re.cells, [2]uint64{uint64(di), uint64(v)})
		}
		for _, pid := range polIDs {
			gid, ok := r.grp[pid].assign[nym]
			if !ok {
				continue
			}
			pi, ok := polIdx[pid]
			if !ok {
				pi = len(polDict)
				polIdx[pid] = pi
				polDict = append(polDict, pid)
			}
			re.assigns = append(re.assigns, [2]int{pi, gid})
		}
		rows = append(rows, re)
	}

	w.u32(len(condDict))
	for _, c := range condDict {
		w.str(c)
	}
	w.u32(len(polDict))
	for _, pid := range polDict {
		w.str(pid)
	}
	w.u32(len(rows))
	for _, re := range rows {
		w.str(re.nym)
		w.u32(len(re.cells))
		for _, c := range re.cells {
			w.u32(int(c[0]))
			w.u64(c[1])
		}
		w.u32(len(re.assigns))
		for _, a := range re.assigns {
			w.u32(a[0])
			w.u32(a[1])
		}
	}
	return w.out()
}

// encodeCacheBucket encodes one bucket's cache entries, using the same
// per-entry encodings as the monolithic v2 blob. Grouped shard references
// may point at shards in OTHER buckets; resolution happens after all buckets
// decode.
func encodeCacheBucket(cfgs []core.CachedConfig, shards []core.CachedShard, grouped []core.CachedGrouped, cfgIdx, shardIdx, grpIdx []int) []byte {
	w := &stateWriter{}
	w.u8(segPayloadVersion)
	w.u32(len(cfgIdx))
	for _, i := range cfgIdx {
		c := &cfgs[i]
		w.str(c.ID)
		w.str(c.Sig)
		writeStateHeader(w, c.Hdr)
		w.u64(uint64(c.Key))
	}
	w.u32(len(shardIdx))
	for _, i := range shardIdx {
		s := &shards[i]
		w.str(s.ID)
		w.str(s.Sig)
		writeStateHeader(w, s.Hdr)
		w.u64(uint64(s.Key))
	}
	w.u32(len(grpIdx))
	for _, i := range grpIdx {
		g := &grouped[i]
		w.str(g.ID)
		w.str(g.Sig)
		w.bytes(g.RekeyNonce)
		w.u32(len(g.Shards))
		for _, sh := range g.Shards {
			if sh.ShardID != "" {
				w.u8(0)
				w.str(sh.ShardID)
			} else {
				w.u8(1)
				writeStateHeader(w, sh.Hdr)
			}
			w.u64(uint64(sh.Wrap))
		}
		w.u64(uint64(g.Key))
	}
	return w.out()
}

// encodeMetaSegment encodes the small always-rewritten remainder: epoch,
// generation, membership versions, per-policy group-universe lengths and the
// per-document diff bases. Callers hold grpMu.
func (p *Publisher) encodeMetaSegment(cfgs []core.CachedConfig, grouped []core.CachedGrouped, polIDs []string) []byte {
	r := p.reg
	cfgByHdr := make(map[*core.Header]string, len(cfgs))
	for i := range cfgs {
		cfgByHdr[cfgs[i].Hdr] = cfgs[i].ID
	}
	grpIDByPtr := make(map[*core.GroupedHeader]string, len(grouped))
	for i := range grouped {
		grpIDByPtr[grouped[i].Hdr] = grouped[i].ID
	}

	w := &stateWriter{}
	w.u8(segPayloadVersion)

	p.pubMu.Lock()
	epoch, gen := p.epoch, p.gen
	last := make(map[string]*lastBroadcast, len(p.lastPub))
	for name, lb := range p.lastPub {
		last[name] = lb
	}
	p.pubMu.Unlock()
	w.u64(epoch)
	w.u64(gen)

	r.mu.RLock()
	ids := sortedKeys(r.memVer)
	w.u32(len(ids))
	for _, id := range ids {
		w.str(id)
		w.u64(r.memVer[id])
	}
	r.mu.RUnlock()

	w.u32(len(polIDs))
	for _, pid := range polIDs {
		w.str(pid)
		w.u32(len(r.grp[pid].counts))
	}

	docs := sortedKeys(last)
	w.u32(len(docs))
	for _, name := range docs {
		lb := last[name]
		w.str(name)
		writeStateBroadcast(w, lb.b, cfgByHdr, grpIDByPtr)
		subdocs := sortedKeys(lb.digests)
		w.u32(len(subdocs))
		for _, sd := range subdocs {
			w.str(sd)
			d := lb.digests[sd]
			w.raw(d[:])
		}
	}
	return w.out()
}

// --- import ----------------------------------------------------------------

// decodedTableSeg is one decoded table segment.
type decodedTableSeg struct {
	rows    []decodedRow
	err     error
	segment int
}

type decodedRow struct {
	nym     string
	cells   map[string]core.CSS
	assigns map[string]int
	dropped bool
}

// decodedCacheSeg is one decoded cache bucket.
type decodedCacheSeg struct {
	cfgs    []core.CachedConfig
	shards  []core.CachedShard
	grouped []core.CachedGrouped
	err     error
}

// ImportStateSegments restores a publisher from a full set of decoded
// segment payloads (every table segment and cache bucket the manifest lists,
// in index order, plus the meta segment). Table and cache segments decode in
// parallel across up to workers goroutines — they are independent — while
// validation that spans segments (duplicate pseudonyms, assignment bounds)
// and the final install run serially. All decodes share one allocation
// budget, so the parallel path enforces the same global bound as the
// monolithic import.
func (p *Publisher) ImportStateSegments(meta []byte, table, cache [][]byte, workers int) error {
	total := len(meta)
	for _, seg := range table {
		total += len(seg)
	}
	for _, seg := range cache {
		total += len(seg)
	}
	if total > maxStateBytes {
		return fmt.Errorf("pubsub: state of %d bytes exceeds the %d limit", total, maxStateBytes)
	}
	if workers < 1 {
		workers = 1
	}
	budget := codec.NewBudget(maxStateHeaderBudget)

	tabSegs := make([]decodedTableSeg, len(table))
	cacheSegs := make([]decodedCacheSeg, len(cache))
	core.Parallel(workers, len(table)+len(cache), func(i int) {
		if i < len(table) {
			tabSegs[i] = decodeTableSegment(p, table[i], budget)
			tabSegs[i].segment = i
		} else {
			cacheSegs[i-len(table)] = decodeCacheSegment(cache[i-len(table)], budget)
		}
	})
	for i := range tabSegs {
		if tabSegs[i].err != nil {
			return fmt.Errorf("pubsub: table segment %d: %w", i, tabSegs[i].err)
		}
	}
	for i := range cacheSegs {
		if cacheSegs[i].err != nil {
			return fmt.Errorf("pubsub: cache segment %d: %w", i, cacheSegs[i].err)
		}
	}

	var cfgs []core.CachedConfig
	var shards []core.CachedShard
	var grouped []core.CachedGrouped
	for i := range cacheSegs {
		cfgs = append(cfgs, cacheSegs[i].cfgs...)
		shards = append(shards, cacheSegs[i].shards...)
		grouped = append(grouped, cacheSegs[i].grouped...)
	}
	cfgHdrByID := make(map[string]*core.Header, len(cfgs))
	for i := range cfgs {
		cfgHdrByID[cfgs[i].ID] = cfgs[i].Hdr
	}
	restoredGrp, err := restoreGroupedHeaders(shards, grouped)
	if err != nil {
		return err
	}

	st, err := p.decodeMetaSegment(meta, budget, cfgHdrByID, restoredGrp)
	if err != nil {
		return fmt.Errorf("pubsub: meta segment: %w", err)
	}
	st.cfgs, st.shards, st.grouped, st.restoredGrp = cfgs, shards, grouped, restoredGrp

	// Merge table segments: duplicate pseudonyms across segments are a
	// manifest-level inconsistency (a slot lives in exactly one segment),
	// and assignments must land inside the meta-declared group universe.
	st.table = make(map[string]map[string]core.CSS)
	st.grpAssign = make(map[string]map[string]int)
	st.grpCounts = make(map[string][]int)
	for id, n := range st.grpUniverse {
		st.grpAssign[id] = make(map[string]int)
		st.grpCounts[id] = make([]int, n)
	}
	for i := range tabSegs {
		for _, row := range tabSegs[i].rows {
			if row.dropped {
				st.dropped = true
			}
			if row.cells == nil {
				continue
			}
			if _, dup := st.table[row.nym]; dup {
				return fmt.Errorf("pubsub: state contains duplicate pseudonym %q", row.nym)
			}
			st.table[row.nym] = row.cells
			for pid, gid := range row.assigns {
				groups, ok := st.grpUniverse[pid]
				if !ok {
					return fmt.Errorf("pubsub: state assigns %q in unknown policy %q", row.nym, pid)
				}
				if gid >= groups {
					return fmt.Errorf("pubsub: state assigns %q to group %d of %d", row.nym, gid, groups)
				}
				st.grpAssign[pid][row.nym] = gid
				st.grpCounts[pid][gid]++
			}
		}
	}
	return p.installState(st)
}

func decodeTableSegment(p *Publisher, data []byte, budget *codec.Budget) decodedTableSeg {
	r := newStateReader(data, budget)
	var out decodedTableSeg
	fail := func(err error) decodedTableSeg { out.err = err; return out }
	ver, err := r.u8()
	if err != nil {
		return fail(err)
	}
	if ver != segPayloadVersion {
		return fail(fmt.Errorf("unsupported segment version %d", ver))
	}
	nd, err := r.count()
	if err != nil {
		return fail(err)
	}
	conds := make([]string, nd)
	for i := range conds {
		if conds[i], err = r.str(maxStateCondLen); err != nil {
			return fail(err)
		}
	}
	np, err := r.count()
	if err != nil {
		return fail(err)
	}
	pols := make([]string, np)
	for i := range pols {
		if pols[i], err = r.str(maxStateCondLen); err != nil {
			return fail(err)
		}
	}
	n, err := r.count()
	if err != nil {
		return fail(err)
	}
	// Rows retain count-driven map allocations; charge them like header
	// material so a crafted segment set cannot amplify.
	if err := r.charge(16 * n); err != nil {
		return fail(err)
	}
	out.rows = make([]decodedRow, 0, n)
	for i := 0; i < n; i++ {
		var row decodedRow
		if row.nym, err = r.str(maxStateNymLen); err != nil {
			return fail(err)
		}
		if err := validateStateNym(row.nym); err != nil {
			return fail(err)
		}
		nc, err := r.count()
		if err != nil {
			return fail(err)
		}
		if nc > maxStateRowCells {
			return fail(errStateOversize)
		}
		cells := make(map[string]core.CSS, nc)
		for j := 0; j < nc; j++ {
			di, err := r.u32()
			if err != nil {
				return fail(err)
			}
			css, err := r.u64()
			if err != nil {
				return fail(err)
			}
			if di >= len(conds) {
				return fail(fmt.Errorf("cell references dictionary entry %d of %d", di, len(conds)))
			}
			if css == 0 || css >= ff64.Modulus {
				return fail(fmt.Errorf("invalid CSS for (%q, %q)", row.nym, conds[di]))
			}
			if _, known := p.condByID[conds[di]]; !known {
				row.dropped = true
				continue
			}
			cells[conds[di]] = core.CSS(css)
		}
		na, err := r.count()
		if err != nil {
			return fail(err)
		}
		if na > np {
			return fail(errStateOversize)
		}
		assigns := make(map[string]int, na)
		for j := 0; j < na; j++ {
			pi, err := r.u32()
			if err != nil {
				return fail(err)
			}
			gid, err := r.u32()
			if err != nil {
				return fail(err)
			}
			if pi >= len(pols) {
				return fail(fmt.Errorf("assignment references dictionary entry %d of %d", pi, len(pols)))
			}
			if _, dup := assigns[pols[pi]]; dup {
				return fail(fmt.Errorf("state assigns %q twice in policy %q", row.nym, pols[pi]))
			}
			assigns[pols[pi]] = gid
		}
		if len(cells) == 0 {
			row.dropped = true
		} else {
			row.cells = cells
			row.assigns = assigns
		}
		out.rows = append(out.rows, row)
	}
	out.err = r.done()
	return out
}

func decodeCacheSegment(data []byte, budget *codec.Budget) decodedCacheSeg {
	r := newStateReader(data, budget)
	var out decodedCacheSeg
	fail := func(err error) decodedCacheSeg { out.err = err; return out }
	ver, err := r.u8()
	if err != nil {
		return fail(err)
	}
	if ver != segPayloadVersion {
		return fail(fmt.Errorf("unsupported segment version %d", ver))
	}
	n, err := r.count()
	if err != nil {
		return fail(err)
	}
	for i := 0; i < n; i++ {
		var c core.CachedConfig
		if c.ID, err = r.str(maxStateSigLen); err != nil {
			return fail(err)
		}
		if c.Sig, err = r.str(maxStateSigLen); err != nil {
			return fail(err)
		}
		if c.Hdr, err = readStateHeader(r); err != nil {
			return fail(err)
		}
		if c.Key, err = r.elem(); err != nil {
			return fail(err)
		}
		out.cfgs = append(out.cfgs, c)
	}
	if n, err = r.count(); err != nil {
		return fail(err)
	}
	for i := 0; i < n; i++ {
		var s core.CachedShard
		if s.ID, err = r.str(maxStateSigLen); err != nil {
			return fail(err)
		}
		if s.Sig, err = r.str(maxStateSigLen); err != nil {
			return fail(err)
		}
		if s.Hdr, err = readStateHeader(r); err != nil {
			return fail(err)
		}
		if s.Key, err = r.elem(); err != nil {
			return fail(err)
		}
		out.shards = append(out.shards, s)
	}
	if n, err = r.count(); err != nil {
		return fail(err)
	}
	for i := 0; i < n; i++ {
		var g core.CachedGrouped
		if g.ID, err = r.str(maxStateSigLen); err != nil {
			return fail(err)
		}
		if g.Sig, err = r.str(maxStateSigLen); err != nil {
			return fail(err)
		}
		if g.RekeyNonce, err = r.bytes(); err != nil {
			return fail(err)
		}
		if len(g.RekeyNonce) != core.NonceSize {
			return fail(fmt.Errorf("rekey nonce of %d bytes, want %d", len(g.RekeyNonce), core.NonceSize))
		}
		ns, err := r.count()
		if err != nil {
			return fail(err)
		}
		g.Shards = make([]core.CachedGroupedShard, ns)
		for j := 0; j < ns; j++ {
			kind, err := r.u8()
			if err != nil {
				return fail(err)
			}
			var sh core.CachedGroupedShard
			switch kind {
			case 0:
				if sh.ShardID, err = r.str(maxStateSigLen); err != nil {
					return fail(err)
				}
			case 1:
				if sh.Hdr, err = readStateHeader(r); err != nil {
					return fail(err)
				}
			default:
				return fail(fmt.Errorf("bad state shard kind %d", kind))
			}
			if sh.Wrap, err = r.elem(); err != nil {
				return fail(err)
			}
			g.Shards[j] = sh
		}
		if g.Key, err = r.elem(); err != nil {
			return fail(err)
		}
		out.grouped = append(out.grouped, g)
	}
	out.err = r.done()
	return out
}

func (p *Publisher) decodeMetaSegment(data []byte, budget *codec.Budget, cfgHdrByID map[string]*core.Header, restoredGrp map[string]*core.GroupedHeader) (*decodedState, error) {
	r := newStateReader(data, budget)
	ver, err := r.u8()
	if err != nil {
		return nil, err
	}
	if ver != segPayloadVersion {
		return nil, fmt.Errorf("unsupported segment version %d", ver)
	}
	st := &decodedState{}
	if st.epoch, err = r.u64(); err != nil {
		return nil, err
	}
	if st.gen, err = r.u64(); err != nil {
		return nil, err
	}
	if st.gen == 0 {
		return nil, fmt.Errorf("state has zero generation")
	}
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	st.memVer = make(map[string]uint64, n)
	for i := 0; i < n; i++ {
		id, err := r.str(maxStateCondLen)
		if err != nil {
			return nil, err
		}
		v, err := r.u64()
		if err != nil {
			return nil, err
		}
		st.memVer[id] = v
	}
	if n, err = r.count(); err != nil {
		return nil, err
	}
	st.grpUniverse = make(map[string]int, n)
	for i := 0; i < n; i++ {
		id, err := r.str(maxStateCondLen)
		if err != nil {
			return nil, err
		}
		groups, err := r.count()
		if err != nil {
			return nil, err
		}
		// Group-count lists allocate 8*groups retained bytes not bounded by
		// the input length (empty groups keep their numbers) — charge them,
		// exactly like the monolithic import.
		if err := r.charge(8 * groups); err != nil {
			return nil, err
		}
		st.grpUniverse[id] = groups
	}
	if n, err = r.count(); err != nil {
		return nil, err
	}
	st.last = make(map[string]*lastBroadcast, n)
	for i := 0; i < n; i++ {
		name, err := r.str(maxStateCondLen)
		if err != nil {
			return nil, err
		}
		if _, dup := st.last[name]; dup {
			return nil, fmt.Errorf("state contains duplicate document %q", name)
		}
		b, err := readStateBroadcast(r, cfgHdrByID, restoredGrp)
		if err != nil {
			return nil, err
		}
		if b.DocName != name {
			return nil, fmt.Errorf("state diff base keyed %q holds document %q", name, b.DocName)
		}
		if b.Gen != st.gen {
			return nil, fmt.Errorf("state diff base %q carries foreign generation", name)
		}
		nd, err := r.count()
		if err != nil {
			return nil, err
		}
		digests := make(map[string][32]byte, nd)
		for j := 0; j < nd; j++ {
			sd, err := r.str(maxStateCondLen)
			if err != nil {
				return nil, err
			}
			raw, err := r.take(32)
			if err != nil {
				return nil, err
			}
			var d [32]byte
			copy(d[:], raw)
			digests[sd] = d
		}
		st.last[name] = &lastBroadcast{b: b, digests: digests}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return st, nil
}
