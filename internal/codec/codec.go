// Package codec holds the hardened binary-decode primitives shared by the
// repo's hand-rolled formats (the durable state v2 blobs and segments in
// internal/pubsub, the WAL records and snapshot manifests in internal/store;
// the wire v1–v3 frames are slated to follow — ROADMAP "unify the three
// hardened codecs").
//
// Every format built on it gets the same discipline for free:
//
//   - fixed-width big-endian integers and u32-length-prefixed strings/bytes;
//   - every length and count field clamped BEFORE it drives an allocation;
//   - an optional allocation Budget, shared across readers, charging decoded
//     structures whose retained size is not naturally bounded by the input
//     length (header material, count-sized slices) — so a crafted few-byte
//     field can never amplify into gigabytes of live memory, even when many
//     segments of one state are decoded concurrently.
//
// Readers never retain views into the input: Str/Bytes copy, and Take hands
// out a subslice explicitly documented as borrowed. Errors are two sentinels
// (ErrTruncated, ErrOversize) the owning packages wrap into their own
// corruption errors.
package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
)

// Errors returned by Reader. Formats wrap them (errors.Is-transparent) into
// their own corruption sentinels.
var (
	// ErrTruncated means the input ended inside a field — with an outer
	// integrity layer (CRC, AEAD) intact this is a format bug or version
	// skew, without one it may be a torn write.
	ErrTruncated = errors.New("codec: truncated input")
	// ErrOversize means a length or count field exceeds the caller's limit,
	// or a Budget charge failed.
	ErrOversize = errors.New("codec: length field exceeds limits")
)

// Budget is a shared allocation allowance, safe for concurrent Charge calls
// (parallel segment decodes draw on one budget). A nil *Budget is unlimited.
type Budget struct {
	n atomic.Int64
}

// NewBudget returns a budget allowing n bytes of charged allocations.
func NewBudget(n int64) *Budget {
	b := &Budget{}
	b.n.Store(n)
	return b
}

// Charge consumes n bytes of the budget, failing with ErrOversize when the
// allowance is exhausted. Charging a nil budget always succeeds.
func (b *Budget) Charge(n int) error {
	if b == nil {
		return nil
	}
	if n < 0 {
		return ErrOversize
	}
	if b.n.Add(-int64(n)) < 0 {
		return ErrOversize
	}
	return nil
}

// Reader decodes one big-endian, length-prefixed buffer.
type Reader struct {
	data   []byte
	off    int
	budget *Budget
}

// NewReader wraps data (not copied; the caller must not mutate it while
// decoding). budget may be nil for unlimited.
func NewReader(data []byte, budget *Budget) *Reader {
	return &Reader{data: data, budget: budget}
}

// Charge draws n bytes from the reader's budget (no-op without one).
func (r *Reader) Charge(n int) error { return r.budget.Charge(n) }

// Budget returns the reader's budget (nil if unlimited).
func (r *Reader) Budget() *Budget { return r.budget }

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

// U8 reads one byte.
func (r *Reader) U8() (byte, error) {
	if r.off+1 > len(r.data) {
		return 0, ErrTruncated
	}
	v := r.data[r.off]
	r.off++
	return v, nil
}

// U32 reads a raw big-endian uint32 (no clamping — for non-length fields;
// lengths and counts go through Len).
func (r *Reader) U32() (uint32, error) {
	if r.off+4 > len(r.data) {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v, nil
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() (uint64, error) {
	if r.off+8 > len(r.data) {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v, nil
}

// Len reads a u32 length/count field clamped to max (ErrOversize beyond it).
func (r *Reader) Len(max int) (int, error) {
	v, err := r.U32()
	if err != nil {
		return 0, err
	}
	if int64(v) > int64(max) {
		return 0, ErrOversize
	}
	return int(v), nil
}

// Str reads a u32-length-prefixed string of at most max bytes.
func (r *Reader) Str(max int) (string, error) {
	n, err := r.Len(max)
	if err != nil {
		return "", err
	}
	if r.off+n > len(r.data) {
		return "", ErrTruncated
	}
	s := string(r.data[r.off : r.off+n])
	r.off += n
	return s, nil
}

// Bytes reads a u32-length-prefixed byte field of at most max bytes,
// returning a copy.
func (r *Reader) Bytes(max int) ([]byte, error) {
	n, err := r.Len(max)
	if err != nil {
		return nil, err
	}
	if r.off+n > len(r.data) {
		return nil, ErrTruncated
	}
	out := append([]byte(nil), r.data[r.off:r.off+n]...)
	r.off += n
	return out, nil
}

// Take returns the next n bytes as a subslice of the input (BORROWED — the
// caller copies anything it retains).
func (r *Reader) Take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.data) {
		return nil, ErrTruncated
	}
	out := r.data[r.off : r.off+n]
	r.off += n
	return out, nil
}

// Done fails if undecoded bytes remain.
func (r *Reader) Done() error {
	if n := len(r.data) - r.off; n != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrOversize, n)
	}
	return nil
}

// Writer builds one big-endian, length-prefixed buffer. The zero value is
// ready to use.
type Writer struct {
	buf bytes.Buffer
}

// U8 appends one byte.
func (w *Writer) U8(v byte) { w.buf.WriteByte(v) }

// U32 appends a big-endian uint32.
func (w *Writer) U32(v int) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(v))
	w.buf.Write(b[:])
}

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	w.buf.Write(b[:])
}

// Bytes appends a u32-length-prefixed byte field.
func (w *Writer) Bytes(p []byte) { w.U32(len(p)); w.buf.Write(p) }

// Str appends a u32-length-prefixed string.
func (w *Writer) Str(s string) { w.U32(len(s)); w.buf.WriteString(s) }

// Raw appends bytes verbatim (magic prefixes, fixed-width digests).
func (w *Writer) Raw(p []byte) { w.buf.Write(p) }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return w.buf.Len() }

// Out returns the accumulated buffer (owned by the writer until discarded).
func (w *Writer) Out() []byte { return w.buf.Bytes() }
