package codec

import (
	"errors"
	"sync"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var w Writer
	w.U8(7)
	w.U32(1234)
	w.U64(1 << 40)
	w.Str("hello")
	w.Bytes([]byte{1, 2, 3})
	w.Raw([]byte{9, 9})

	r := NewReader(w.Out(), nil)
	if v, err := r.U8(); err != nil || v != 7 {
		t.Fatalf("U8 = %d, %v", v, err)
	}
	if v, err := r.Len(1 << 20); err != nil || v != 1234 {
		t.Fatalf("Len = %d, %v", v, err)
	}
	if v, err := r.U64(); err != nil || v != 1<<40 {
		t.Fatalf("U64 = %d, %v", v, err)
	}
	if s, err := r.Str(16); err != nil || s != "hello" {
		t.Fatalf("Str = %q, %v", s, err)
	}
	if b, err := r.Bytes(16); err != nil || len(b) != 3 || b[0] != 1 {
		t.Fatalf("Bytes = %v, %v", b, err)
	}
	if b, err := r.Take(2); err != nil || b[0] != 9 || b[1] != 9 {
		t.Fatalf("Take = %v, %v", b, err)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestTruncationAndOversize(t *testing.T) {
	var w Writer
	w.Str("abcdef")
	data := w.Out()

	r := NewReader(data[:3], nil)
	if _, err := r.Str(64); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated prefix: %v", err)
	}
	r = NewReader(data, nil)
	if _, err := r.Str(3); !errors.Is(err, ErrOversize) {
		t.Fatalf("over max: %v", err)
	}
	r = NewReader(data[:7], nil)
	if _, err := r.Str(64); !errors.Is(err, ErrTruncated) {
		t.Fatalf("body cut: %v", err)
	}
	r = NewReader(append(append([]byte(nil), data...), 0xff), nil)
	if _, err := r.Str(64); err != nil {
		t.Fatal(err)
	}
	if err := r.Done(); err == nil {
		t.Fatal("Done accepted trailing bytes")
	}
}

func TestBudgetShared(t *testing.T) {
	b := NewBudget(100)
	if err := b.Charge(60); err != nil {
		t.Fatal(err)
	}
	if err := b.Charge(60); !errors.Is(err, ErrOversize) {
		t.Fatalf("over budget: %v", err)
	}
	// nil budget is unlimited.
	var nb *Budget
	if err := nb.Charge(1 << 30); err != nil {
		t.Fatal(err)
	}
}

func TestBudgetConcurrent(t *testing.T) {
	b := NewBudget(1000)
	var wg sync.WaitGroup
	errs := make([]error, 20)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = b.Charge(100)
		}(i)
	}
	wg.Wait()
	ok := 0
	for _, err := range errs {
		if err == nil {
			ok++
		}
	}
	if ok != 10 {
		t.Fatalf("%d charges of 100 passed against a budget of 1000", ok)
	}
}
