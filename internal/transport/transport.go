// Package transport puts the registration and dissemination phases on the
// wire: a publisher-side TCP server and a subscriber-side client exchanging
// gob-encoded messages. The client implements pubsub.Registrar, so a
// subscriber can register over the network exactly as it does in process;
// broadcasts are fetched from the same endpoint.
//
// The Pedersen parameters themselves are system-wide public setup (group
// choice + derivation seed) and are established out of band, as in the
// paper, where the IdMgr publishes Param = ⟨G, g, h⟩ once.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"

	"ppcd/internal/ocbe"
	"ppcd/internal/pedersen"
	"ppcd/internal/policy"
	"ppcd/internal/pubsub"
)

// request is the single wire request envelope.
type request struct {
	Kind string // "info", "register", "fetch"
	Reg  *pubsub.RegistrationRequest
	Doc  string // for fetch: document name ("" = latest)
}

// response is the single wire response envelope.
type response struct {
	Err        string
	Conditions []policy.Condition
	Ell        int
	Envelope   *ocbe.Envelope
	Broadcast  *pubsub.Broadcast
}

// Server exposes a publisher over TCP.
type Server struct {
	pub *pubsub.Publisher

	mu        sync.Mutex
	ln        net.Listener
	broadcast map[string]*pubsub.Broadcast
	latest    string
	wg        sync.WaitGroup
	closed    bool
}

// NewServer wraps a publisher. Call Serve to start accepting connections.
func NewServer(pub *pubsub.Publisher) (*Server, error) {
	if pub == nil {
		return nil, errors.New("transport: nil publisher")
	}
	return &Server{pub: pub, broadcast: make(map[string]*pubsub.Broadcast)}, nil
}

// Listen binds the server to addr (e.g. "127.0.0.1:0") and starts serving in
// the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // client closed or garbage; drop the connection
		}
		resp := s.dispatch(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req *request) *response {
	switch req.Kind {
	case "info":
		return &response{Conditions: s.pub.Conditions(), Ell: s.pub.Ell()}
	case "register":
		env, err := s.pub.Register(req.Reg)
		if err != nil {
			return &response{Err: err.Error()}
		}
		return &response{Envelope: env}
	case "fetch":
		s.mu.Lock()
		defer s.mu.Unlock()
		name := req.Doc
		if name == "" {
			name = s.latest
		}
		b, ok := s.broadcast[name]
		if !ok {
			return &response{Err: fmt.Sprintf("transport: no broadcast for %q", name)}
		}
		return &response{Broadcast: b}
	default:
		return &response{Err: fmt.Sprintf("transport: unknown request kind %q", req.Kind)}
	}
}

// PublishBroadcast stores a broadcast package for retrieval by clients.
func (s *Server) PublishBroadcast(b *pubsub.Broadcast) error {
	if b == nil {
		return errors.New("transport: nil broadcast")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.broadcast[b.DocName] = b
	s.latest = b.DocName
	return nil
}

// Close stops the listener and waits for in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Client is the subscriber-side connection to a publisher server. It
// implements pubsub.Registrar.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	enc    *gob.Encoder
	dec    *gob.Decoder
	params *pedersen.Params
	ell    int
	conds  []policy.Condition
	haveIn bool
}

// Dial connects to a publisher server. params must match the system-wide
// Pedersen setup.
func Dial(addr string, params *pedersen.Params) (*Client, error) {
	if params == nil {
		return nil, errors.New("transport: nil params")
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn), params: params}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req *request) (*response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("transport: send: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("transport: receive: %w", err)
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return &resp, nil
}

func (c *Client) ensureInfo() error {
	c.mu.Lock()
	have := c.haveIn
	c.mu.Unlock()
	if have {
		return nil
	}
	resp, err := c.roundTrip(&request{Kind: "info"})
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.conds = resp.Conditions
	c.ell = resp.Ell
	c.haveIn = true
	c.mu.Unlock()
	return nil
}

// Params implements pubsub.Registrar.
func (c *Client) Params() *pedersen.Params { return c.params }

// Ell implements pubsub.Registrar.
func (c *Client) Ell() int {
	if err := c.ensureInfo(); err != nil {
		return 0
	}
	return c.ell
}

// Conditions implements pubsub.Registrar.
func (c *Client) Conditions() []policy.Condition {
	if err := c.ensureInfo(); err != nil {
		return nil
	}
	return append([]policy.Condition(nil), c.conds...)
}

// Register implements pubsub.Registrar.
func (c *Client) Register(reg *pubsub.RegistrationRequest) (*ocbe.Envelope, error) {
	resp, err := c.roundTrip(&request{Kind: "register", Reg: reg})
	if err != nil {
		return nil, err
	}
	if resp.Envelope == nil {
		return nil, errors.New("transport: empty envelope in response")
	}
	return resp.Envelope, nil
}

// Fetch retrieves the broadcast for a document name ("" = latest published).
func (c *Client) Fetch(docName string) (*pubsub.Broadcast, error) {
	resp, err := c.roundTrip(&request{Kind: "fetch", Doc: docName})
	if err != nil {
		return nil, err
	}
	if resp.Broadcast == nil {
		return nil, errors.New("transport: empty broadcast in response")
	}
	return resp.Broadcast, nil
}

var _ pubsub.Registrar = (*Client)(nil)
