// Package transport puts the registration and dissemination phases on the
// wire: a publisher-side TCP server and a subscriber-side client. Requests
// travel as gob envelopes; broadcast payloads travel as the deterministic
// v3 wire encoding, marshaled ONCE per epoch on the server and fanned out
// as the same bytes to every connection (gob remains as a per-connection
// fallback for clients predating the wire path, negotiated through the
// "info" capability advertisement).
//
// The client implements pubsub.BatchRegistrar, so a subscriber registering
// over the network sends all matching conditions in a single register-batch
// round trip. Dissemination is either pull (Fetch, served from a bounded
// ring of recent epochs) or push: Subscribe opens a long-lived stream over
// which the server sends epoch-stamped snapshot/delta/heartbeat frames; a
// reconnecting subscriber presents its last applied epoch and receives a
// delta catch-up when the server still retains that epoch, else a fresh
// snapshot (see stream.go).
//
// The retention ring and the per-connection fan-out live in
// internal/fanout, shared with the relay tier (internal/relay): the server
// here is simply a registration backend (a local publisher at the origin, a
// proxy to the origin at a relay) glued to a fanout.Hub.
//
// The Pedersen parameters themselves are system-wide public setup (group
// choice + derivation seed) and are established out of band, as in the
// paper, where the IdMgr publishes Param = ⟨G, g, h⟩ once.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"ppcd/internal/fanout"
	"ppcd/internal/ocbe"
	"ppcd/internal/pedersen"
	"ppcd/internal/policy"
	"ppcd/internal/pubsub"
	"ppcd/internal/wire"
)

// request is the single wire request envelope.
type request struct {
	Kind  string // "info", "register", "register-batch", "fetch", "subscribe"
	Reg   *pubsub.RegistrationRequest
	Batch []*pubsub.RegistrationRequest
	Doc   string // fetch: document name ("" = latest); subscribe: doc filter ("" = all)
	// Wire asks for the broadcast as v3 wire-format bytes (marshaled once
	// per epoch server-side) instead of a per-connection gob encode. Old
	// servers ignore the field and answer with gob.
	Wire bool
	// LastEpoch / LastGen are the subscriber's last applied epoch and its
	// publisher generation ("subscribe"): the server answers with a delta
	// catch-up when it retains that exact state, else a snapshot.
	LastEpoch uint64
	LastGen   uint64
}

// response is the single wire response envelope.
type response struct {
	Err        string
	Conditions []policy.Condition
	Ell        int
	// HasBatch advertises the register-batch RPC in "info" responses;
	// servers that predate it leave the field unset, steering clients to
	// the per-condition path without error-text sniffing.
	HasBatch bool
	// HasWire / HasStream advertise the v3 wire fetch encoding and the
	// subscribe stream RPC, with the same unset-means-absent convention.
	HasWire   bool
	HasStream bool
	// Origin names the authoritative publisher address when this server is
	// a relay ("" when the server IS the origin, and on servers predating
	// the relay tier). Clients may use it for logging or to reach the
	// origin directly.
	Origin    string
	Envelope  *ocbe.Envelope
	Batch     []pubsub.BatchResult
	Broadcast *pubsub.Broadcast
	// Raw is the v3 snapshot frame of the fetched broadcast (when the
	// request set Wire and the server supports it).
	Raw []byte
}

// DefaultRetention is the number of recent epochs the server keeps for
// fetch serving and delta catch-ups.
const DefaultRetention = fanout.DefaultRetention

// Server exposes a registration backend plus a broadcast fan-out over TCP.
// At the origin the backend is the local *pubsub.Publisher; at a relay it
// is a proxy that forwards registrations upstream while broadcasts are
// re-served from the relay's own retention ring.
type Server struct {
	reg pubsub.BatchRegistrar
	hub *fanout.Hub

	heartbeat time.Duration
	streaming bool

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	origin string
	wg     sync.WaitGroup
	closed bool
}

// NewServer wraps a publisher. Call Listen to start accepting connections.
func NewServer(pub *pubsub.Publisher) (*Server, error) {
	if pub == nil {
		return nil, errors.New("transport: nil publisher")
	}
	return NewServerWithBackend(pub, "")
}

// NewServerWithBackend wraps any registration backend — a relay passes its
// upstream proxy and the origin's address (advertised to clients in "info"
// responses; "" when this server is itself the origin).
func NewServerWithBackend(reg pubsub.BatchRegistrar, origin string) (*Server, error) {
	if reg == nil {
		return nil, errors.New("transport: nil registration backend")
	}
	return &Server{
		reg:       reg,
		hub:       fanout.NewHub(),
		heartbeat: defaultHeartbeat,
		streaming: true,
		conns:     make(map[net.Conn]struct{}),
		origin:    origin,
	}, nil
}

// SetRetention bounds how many recent epochs the server keeps (default
// DefaultRetention, minimum 1). Call before Listen.
func (s *Server) SetRetention(k int) { s.hub.SetRetention(k) }

// SetHeartbeatInterval tunes the stream heartbeat cadence (default 30s;
// 0 disables heartbeats). Call before Listen.
func (s *Server) SetHeartbeatInterval(d time.Duration) { s.heartbeat = d }

// SetWriteTimeout tunes the per-frame write deadline after which a stream
// consumer is considered dead (default 10s). Call before Listen.
func (s *Server) SetWriteTimeout(d time.Duration) { s.hub.SetWriteTimeout(d) }

// SetQueueDepth bounds each stream connection's outbound frame queue
// (default fanout.DefaultQueueDepth, minimum 1). Relays facing thousands of
// consumers want deeper queues than origin-attached subscribers.
func (s *Server) SetQueueDepth(d int) { s.hub.SetQueueDepth(d) }

// SetStreaming enables or disables the subscribe stream RPC (default
// enabled). Call before Listen.
func (s *Server) SetStreaming(on bool) { s.streaming = on }

// SetOrigin updates the origin address advertised in "info" responses (a
// relay learns it from its upstream after connecting).
func (s *Server) SetOrigin(addr string) {
	s.mu.Lock()
	s.origin = addr
	s.mu.Unlock()
}

// Streams is the number of live subscribe streams.
func (s *Server) Streams() int { return s.hub.Conns() }

// RingLen is the number of retained epochs.
func (s *Server) RingLen() int { return s.hub.RingLen() }

// Egress reports cumulative frames and bytes pushed to subscribe streams —
// the measured cost of this node's fan-out.
func (s *Server) Egress() (frames, bytes int64) { return s.hub.Egress() }

// Current returns the decoded broadcast of the newest retained epoch for
// the named document, nil when none is retained. A relay uses it as the
// application base for incoming upstream deltas.
func (s *Server) Current(doc string) *pubsub.Broadcast { return s.hub.Current(doc) }

// Listen binds the server to addr (e.g. "127.0.0.1:0") and starts serving in
// the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	if s.streaming {
		s.hub.StartHeartbeats(s.heartbeat)
	}
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		// Track the conn so Close can unblock a handler idling in Decode
		// (e.g. a relay's long-lived registration-proxy connection).
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.handle(conn)
		}()
	}
}

// maxRequestBytes bounds how much a single gob-encoded request may read
// from the connection before it is decoded — without it, a hostile client
// could stream an arbitrarily large batch that is fully materialized before
// the publisher's batch-size cap can reject it. The same constant bounds a
// stream frame on the client side.
const maxRequestBytes = 64 << 20

func (s *Server) handle(conn net.Conn) {
	lim := &io.LimitedReader{R: conn}
	dec := gob.NewDecoder(lim)
	enc := gob.NewEncoder(conn)
	for {
		lim.N = maxRequestBytes
		var req request
		if err := dec.Decode(&req); err != nil {
			return // client closed, over-limit, or garbage; drop the connection
		}
		if req.Kind == "subscribe" && s.streaming {
			// The connection leaves the request/response protocol and
			// becomes a one-way frame stream until either side closes it.
			s.hub.ServeConn(conn, req.Doc, req.LastEpoch, req.LastGen)
			return
		}
		resp := s.dispatch(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req *request) *response {
	switch req.Kind {
	case "info":
		s.mu.Lock()
		origin := s.origin
		s.mu.Unlock()
		return &response{
			Conditions: s.reg.Conditions(),
			Ell:        s.reg.Ell(),
			HasBatch:   true,
			HasWire:    true,
			HasStream:  s.streaming,
			Origin:     origin,
		}
	case "register":
		env, err := s.reg.Register(req.Reg)
		if err != nil {
			return &response{Err: err.Error()}
		}
		return &response{Envelope: env}
	case "register-batch":
		results, err := s.reg.RegisterBatch(req.Batch)
		if err != nil {
			return &response{Err: err.Error()}
		}
		return &response{Batch: results}
	case "fetch":
		known, raw, b := s.hub.Lookup(req.Doc)
		if !known {
			return &response{Err: fmt.Sprintf("transport: no broadcast for %q", req.Doc)}
		}
		if raw == nil {
			return &response{Err: "transport: no broadcast published yet"}
		}
		if req.Wire {
			return &response{Raw: raw}
		}
		return &response{Broadcast: b}
	case "subscribe":
		return &response{Err: "transport: streaming disabled on this server"}
	default:
		return &response{Err: fmt.Sprintf("transport: unknown request kind %q", req.Kind)}
	}
}

// PublishBroadcast makes a broadcast available to clients: it is marshaled
// once (snapshot frame, plus a delta frame against the previous epoch of
// the same document), appended to the bounded retention ring, and fanned
// out to every connected stream — subscribers current at the previous epoch
// receive only the delta bytes.
func (s *Server) PublishBroadcast(b *pubsub.Broadcast) error {
	return s.PublishRaw(b, nil, nil, 0)
}

// PublishRaw is PublishBroadcast for callers that already hold the exact
// wire frames — a relay retains and re-serves the bytes it received
// upstream rather than re-marshaling. rawSnapshot and rawDelta are optional
// (nil = marshal/diff locally); deltaBase names rawDelta's base epoch.
func (s *Server) PublishRaw(b *pubsub.Broadcast, rawSnapshot, rawDelta []byte, deltaBase uint64) error {
	if b == nil {
		return errors.New("transport: nil broadcast")
	}
	s.hub.Publish(b, rawSnapshot, rawDelta, deltaBase)
	return nil
}

// Close stops the listener, shuts every stream and waits for in-flight
// handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		delete(s.conns, conn)
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.hub.Close()
	s.wg.Wait()
	return err
}

// Client is the subscriber-side connection to a publisher server (or a
// relay re-serving one). It implements pubsub.Registrar.
type Client struct {
	addr string

	mu        sync.Mutex
	conn      net.Conn
	enc       *gob.Encoder
	dec       *gob.Decoder
	params    *pedersen.Params
	ell       int
	conds     []policy.Condition
	hasBatch  bool
	hasWire   bool
	hasStream bool
	origin    string
	haveIn    bool
}

// Dial connects to a publisher server. params must match the system-wide
// Pedersen setup.
func Dial(addr string, params *pedersen.Params) (*Client, error) {
	if params == nil {
		return nil, errors.New("transport: nil params")
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	return &Client{addr: addr, conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn), params: params}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req *request) (*response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("transport: send: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("transport: receive: %w", err)
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return &resp, nil
}

func (c *Client) ensureInfo() error {
	c.mu.Lock()
	have := c.haveIn
	c.mu.Unlock()
	if have {
		return nil
	}
	resp, err := c.roundTrip(&request{Kind: "info"})
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.conds = resp.Conditions
	c.ell = resp.Ell
	c.hasBatch = resp.HasBatch
	c.hasWire = resp.HasWire
	c.hasStream = resp.HasStream
	c.origin = resp.Origin
	c.haveIn = true
	c.mu.Unlock()
	return nil
}

// Params implements pubsub.Registrar.
func (c *Client) Params() *pedersen.Params { return c.params }

// Ell implements pubsub.Registrar.
func (c *Client) Ell() int {
	if err := c.ensureInfo(); err != nil {
		return 0
	}
	return c.ell
}

// Conditions implements pubsub.Registrar.
func (c *Client) Conditions() []policy.Condition {
	if err := c.ensureInfo(); err != nil {
		return nil
	}
	return append([]policy.Condition(nil), c.conds...)
}

// Origin reports the authoritative publisher address advertised by the
// server, "" when the dialed server is itself the origin (or predates the
// relay tier). Useful to detect that a connection landed on a relay.
func (c *Client) Origin() string {
	if err := c.ensureInfo(); err != nil {
		return ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.origin
}

// Register implements pubsub.Registrar.
func (c *Client) Register(reg *pubsub.RegistrationRequest) (*ocbe.Envelope, error) {
	resp, err := c.roundTrip(&request{Kind: "register", Reg: reg})
	if err != nil {
		return nil, err
	}
	if resp.Envelope == nil {
		return nil, errors.New("transport: empty envelope in response")
	}
	return resp.Envelope, nil
}

// RegisterBatch implements pubsub.BatchRegistrar: all registrations of one
// subscriber travel in a single round trip instead of one per condition.
// Against a server whose "info" response does not advertise the batch RPC
// (one predating it), it transparently degrades to one Register round trip
// per item.
func (c *Client) RegisterBatch(reqs []*pubsub.RegistrationRequest) ([]pubsub.BatchResult, error) {
	if err := c.ensureInfo(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	hasBatch := c.hasBatch
	c.mu.Unlock()
	if !hasBatch {
		// Old server: fall back to the per-condition RPC.
		results := make([]pubsub.BatchResult, len(reqs))
		for i, req := range reqs {
			if req == nil {
				results[i].Err = "pubsub: incomplete registration request"
				continue
			}
			results[i].CondID = req.CondID
			env, err := c.Register(req)
			if err != nil {
				results[i].Err = err.Error()
				continue
			}
			results[i].Envelope = env
		}
		return results, nil
	}
	resp, err := c.roundTrip(&request{Kind: "register-batch", Batch: reqs})
	if err != nil {
		return nil, err
	}
	if len(resp.Batch) != len(reqs) {
		return nil, fmt.Errorf("transport: %d batch results for %d requests", len(resp.Batch), len(reqs))
	}
	return resp.Batch, nil
}

// Fetch retrieves the broadcast for a document name ("" = latest published).
// Against a v3 server the payload arrives as the server's per-epoch wire
// bytes; older servers answer with per-connection gob. A fetch naming a
// document that rotated out of the server's retention ring is answered with
// the nearest retained snapshot — check Broadcast.DocName when that matters.
func (c *Client) Fetch(docName string) (*pubsub.Broadcast, error) {
	// Capability discovery is best-effort: if info fails the fetch round
	// trip below will surface the real error.
	_ = c.ensureInfo()
	c.mu.Lock()
	hasWire := c.hasWire
	c.mu.Unlock()
	resp, err := c.roundTrip(&request{Kind: "fetch", Doc: docName, Wire: hasWire})
	if err != nil {
		return nil, err
	}
	if len(resp.Raw) > 0 {
		f, err := wire.UnmarshalFrame(resp.Raw)
		if err != nil {
			return nil, fmt.Errorf("transport: decoding fetched snapshot: %w", err)
		}
		if f.Type != wire.FrameSnapshot || f.Snapshot == nil {
			return nil, fmt.Errorf("transport: fetch answered with frame type %d", f.Type)
		}
		return f.Snapshot, nil
	}
	if resp.Broadcast == nil {
		return nil, errors.New("transport: empty broadcast in response")
	}
	return resp.Broadcast, nil
}

var _ pubsub.BatchRegistrar = (*Client)(nil)
