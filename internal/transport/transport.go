// Package transport puts the registration and dissemination phases on the
// wire: a publisher-side TCP server and a subscriber-side client. Requests
// travel as gob envelopes; broadcast payloads travel as the deterministic
// v3 wire encoding, marshaled ONCE per epoch on the server and fanned out
// as the same bytes to every connection (gob remains as a per-connection
// fallback for clients predating the wire path, negotiated through the
// "info" capability advertisement).
//
// The client implements pubsub.BatchRegistrar, so a subscriber registering
// over the network sends all matching conditions in a single register-batch
// round trip. Dissemination is either pull (Fetch, served from a bounded
// ring of recent epochs) or push: Subscribe opens a long-lived stream over
// which the server sends epoch-stamped snapshot/delta/heartbeat frames; a
// reconnecting subscriber presents its last applied epoch and receives a
// delta catch-up when the server still retains that epoch, else a fresh
// snapshot (see stream.go).
//
// The Pedersen parameters themselves are system-wide public setup (group
// choice + derivation seed) and are established out of band, as in the
// paper, where the IdMgr publishes Param = ⟨G, g, h⟩ once.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"ppcd/internal/ocbe"
	"ppcd/internal/pedersen"
	"ppcd/internal/policy"
	"ppcd/internal/pubsub"
	"ppcd/internal/wire"
)

// request is the single wire request envelope.
type request struct {
	Kind  string // "info", "register", "register-batch", "fetch", "subscribe"
	Reg   *pubsub.RegistrationRequest
	Batch []*pubsub.RegistrationRequest
	Doc   string // fetch: document name ("" = latest); subscribe: doc filter ("" = all)
	// Wire asks for the broadcast as v3 wire-format bytes (marshaled once
	// per epoch server-side) instead of a per-connection gob encode. Old
	// servers ignore the field and answer with gob.
	Wire bool
	// LastEpoch / LastGen are the subscriber's last applied epoch and its
	// publisher generation ("subscribe"): the server answers with a delta
	// catch-up when it retains that exact state, else a snapshot.
	LastEpoch uint64
	LastGen   uint64
}

// response is the single wire response envelope.
type response struct {
	Err        string
	Conditions []policy.Condition
	Ell        int
	// HasBatch advertises the register-batch RPC in "info" responses;
	// servers that predate it leave the field unset, steering clients to
	// the per-condition path without error-text sniffing.
	HasBatch bool
	// HasWire / HasStream advertise the v3 wire fetch encoding and the
	// subscribe stream RPC, with the same unset-means-absent convention.
	HasWire   bool
	HasStream bool
	Envelope  *ocbe.Envelope
	Batch     []pubsub.BatchResult
	Broadcast *pubsub.Broadcast
	// Raw is the v3 snapshot frame of the fetched broadcast (when the
	// request set Wire and the server supports it).
	Raw []byte
}

// DefaultRetention is the number of recent epochs the server keeps for
// fetch serving and delta catch-ups.
const DefaultRetention = 8

// epochEntry is one retained epoch: the broadcast plus its wire frames,
// marshaled once at PublishBroadcast time and served byte-identically to
// every fetch and stream consumer.
type epochEntry struct {
	epoch uint64
	doc   string
	b     *pubsub.Broadcast
	// snapshot is the v3 snapshot frame; delta the v3 delta frame against
	// the previous retained epoch of the same document (nil for the first),
	// with prevEpoch naming that base.
	snapshot  []byte
	delta     []byte
	prevEpoch uint64
	// catchup caches marshaled delta frames for older retained bases
	// (keyed by base epoch), so a reconnect storm after a publisher blip
	// computes each diff once instead of once per subscriber.
	catchup map[uint64][]byte
}

// Server exposes a publisher over TCP.
type Server struct {
	pub *pubsub.Publisher

	retain       int
	heartbeat    time.Duration
	writeTimeout time.Duration
	streaming    bool

	mu   sync.Mutex
	ln   net.Listener
	ring []*epochEntry
	// docs records every document name ever published (names only, so the
	// footprint is negligible): a fetch for a name that rotated out of the
	// bounded ring is served with the nearest retained snapshot, while a
	// fetch for a name never published stays an explicit error.
	docs    map[string]bool
	streams map[*streamConn]struct{}
	hbStop  chan struct{}
	wg      sync.WaitGroup
	closed  bool
}

// NewServer wraps a publisher. Call Serve to start accepting connections.
func NewServer(pub *pubsub.Publisher) (*Server, error) {
	if pub == nil {
		return nil, errors.New("transport: nil publisher")
	}
	return &Server{
		pub:          pub,
		retain:       DefaultRetention,
		heartbeat:    defaultHeartbeat,
		writeTimeout: defaultWriteTimeout,
		streaming:    true,
		docs:         make(map[string]bool),
		streams:      make(map[*streamConn]struct{}),
		hbStop:       make(chan struct{}),
	}, nil
}

// SetRetention bounds how many recent epochs the server keeps (default
// DefaultRetention, minimum 1). Call before Listen.
func (s *Server) SetRetention(k int) {
	if k < 1 {
		k = 1
	}
	s.retain = k
}

// SetHeartbeatInterval tunes the stream heartbeat cadence (default 30s;
// 0 disables heartbeats). Call before Listen.
func (s *Server) SetHeartbeatInterval(d time.Duration) { s.heartbeat = d }

// SetWriteTimeout tunes the per-frame write deadline after which a stream
// consumer is considered dead (default 10s). Call before Listen.
func (s *Server) SetWriteTimeout(d time.Duration) {
	if d > 0 {
		s.writeTimeout = d
	}
}

// SetStreaming enables or disables the subscribe stream RPC (default
// enabled). Call before Listen.
func (s *Server) SetStreaming(on bool) { s.streaming = on }

// Listen binds the server to addr (e.g. "127.0.0.1:0") and starts serving in
// the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	if s.streaming && s.heartbeat > 0 {
		s.wg.Add(1)
		go s.heartbeatLoop()
	}
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.handle(conn)
		}()
	}
}

// maxRequestBytes bounds how much a single gob-encoded request may read
// from the connection before it is decoded — without it, a hostile client
// could stream an arbitrarily large batch that is fully materialized before
// the publisher's batch-size cap can reject it. The same constant bounds a
// stream frame on the client side.
const maxRequestBytes = 64 << 20

func (s *Server) handle(conn net.Conn) {
	lim := &io.LimitedReader{R: conn}
	dec := gob.NewDecoder(lim)
	enc := gob.NewEncoder(conn)
	for {
		lim.N = maxRequestBytes
		var req request
		if err := dec.Decode(&req); err != nil {
			return // client closed, over-limit, or garbage; drop the connection
		}
		if req.Kind == "subscribe" && s.streaming {
			// The connection leaves the request/response protocol and
			// becomes a one-way frame stream until either side closes it.
			s.serveStream(conn, &req)
			return
		}
		resp := s.dispatch(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req *request) *response {
	switch req.Kind {
	case "info":
		return &response{
			Conditions: s.pub.Conditions(),
			Ell:        s.pub.Ell(),
			HasBatch:   true,
			HasWire:    true,
			HasStream:  s.streaming,
		}
	case "register":
		env, err := s.pub.Register(req.Reg)
		if err != nil {
			return &response{Err: err.Error()}
		}
		return &response{Envelope: env}
	case "register-batch":
		results, err := s.pub.RegisterBatch(req.Batch)
		if err != nil {
			return &response{Err: err.Error()}
		}
		return &response{Batch: results}
	case "fetch":
		s.mu.Lock()
		known := req.Doc == "" || s.docs[req.Doc]
		ent := s.nearestEntry(req.Doc)
		s.mu.Unlock()
		if !known {
			return &response{Err: fmt.Sprintf("transport: no broadcast for %q", req.Doc)}
		}
		if ent == nil {
			return &response{Err: "transport: no broadcast published yet"}
		}
		if req.Wire {
			return &response{Raw: ent.snapshot}
		}
		return &response{Broadcast: ent.b}
	case "subscribe":
		return &response{Err: "transport: streaming disabled on this server"}
	default:
		return &response{Err: fmt.Sprintf("transport: unknown request kind %q", req.Kind)}
	}
}

// nearestEntry returns the newest retained epoch for the named document, or
// — when the document rotated out of the bounded ring (or name is "") — the
// newest retained epoch overall. Callers detect the substitution through
// Broadcast.DocName. Callers hold s.mu.
func (s *Server) nearestEntry(name string) *epochEntry {
	for i := len(s.ring) - 1; i >= 0; i-- {
		if name == "" || s.ring[i].doc == name {
			return s.ring[i]
		}
	}
	if len(s.ring) > 0 && name != "" {
		return s.ring[len(s.ring)-1]
	}
	return nil
}

// findEntry returns the retained epoch entry for (doc, epoch), nil if it
// rotated out. Callers hold s.mu.
func (s *Server) findEntry(doc string, epoch uint64) *epochEntry {
	for i := len(s.ring) - 1; i >= 0; i-- {
		if s.ring[i].doc == doc && s.ring[i].epoch == epoch {
			return s.ring[i]
		}
	}
	return nil
}

// PublishBroadcast makes a broadcast available to clients: it is marshaled
// once (snapshot frame, plus a delta frame against the previous epoch of
// the same document), appended to the bounded retention ring, and fanned
// out to every connected stream — subscribers current at the previous epoch
// receive only the delta bytes.
func (s *Server) PublishBroadcast(b *pubsub.Broadcast) error {
	if b == nil {
		return errors.New("transport: nil broadcast")
	}
	ent := &epochEntry{epoch: b.Epoch, doc: b.DocName, b: b, snapshot: wire.MarshalSnapshotFrame(b)}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.docs[b.DocName] = true
	if prev := s.nearestEntry(b.DocName); prev != nil && prev.doc == b.DocName && prev.epoch < b.Epoch {
		if d, err := pubsub.Diff(prev.b, b); err == nil {
			ent.delta = wire.MarshalDeltaFrame(d)
			ent.prevEpoch = prev.epoch
		}
	}
	s.ring = append(s.ring, ent)
	if len(s.ring) > s.retain {
		// Drop the oldest; the slice is small (retain entries), so the copy
		// is cheap and the backing array does not pin evicted broadcasts.
		s.ring = append(s.ring[:0:0], s.ring[len(s.ring)-s.retain:]...)
	}
	for sc := range s.streams {
		if sc.doc != "" && sc.doc != b.DocName {
			continue
		}
		payload := ent.snapshot
		if last, ok := sc.epochs[b.DocName]; ok {
			if last == b.Epoch {
				continue
			}
			if ent.delta != nil && last == ent.prevEpoch {
				payload = ent.delta
			}
		}
		sc.epochs[b.DocName] = b.Epoch
		s.offer(sc, payload)
	}
	return nil
}

// Close stops the listener and waits for in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	close(s.hbStop)
	for sc := range s.streams {
		delete(s.streams, sc)
		sc.shutdown()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Client is the subscriber-side connection to a publisher server. It
// implements pubsub.Registrar.
type Client struct {
	addr string

	mu        sync.Mutex
	conn      net.Conn
	enc       *gob.Encoder
	dec       *gob.Decoder
	params    *pedersen.Params
	ell       int
	conds     []policy.Condition
	hasBatch  bool
	hasWire   bool
	hasStream bool
	haveIn    bool
}

// Dial connects to a publisher server. params must match the system-wide
// Pedersen setup.
func Dial(addr string, params *pedersen.Params) (*Client, error) {
	if params == nil {
		return nil, errors.New("transport: nil params")
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	return &Client{addr: addr, conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn), params: params}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req *request) (*response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("transport: send: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("transport: receive: %w", err)
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return &resp, nil
}

func (c *Client) ensureInfo() error {
	c.mu.Lock()
	have := c.haveIn
	c.mu.Unlock()
	if have {
		return nil
	}
	resp, err := c.roundTrip(&request{Kind: "info"})
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.conds = resp.Conditions
	c.ell = resp.Ell
	c.hasBatch = resp.HasBatch
	c.hasWire = resp.HasWire
	c.hasStream = resp.HasStream
	c.haveIn = true
	c.mu.Unlock()
	return nil
}

// Params implements pubsub.Registrar.
func (c *Client) Params() *pedersen.Params { return c.params }

// Ell implements pubsub.Registrar.
func (c *Client) Ell() int {
	if err := c.ensureInfo(); err != nil {
		return 0
	}
	return c.ell
}

// Conditions implements pubsub.Registrar.
func (c *Client) Conditions() []policy.Condition {
	if err := c.ensureInfo(); err != nil {
		return nil
	}
	return append([]policy.Condition(nil), c.conds...)
}

// Register implements pubsub.Registrar.
func (c *Client) Register(reg *pubsub.RegistrationRequest) (*ocbe.Envelope, error) {
	resp, err := c.roundTrip(&request{Kind: "register", Reg: reg})
	if err != nil {
		return nil, err
	}
	if resp.Envelope == nil {
		return nil, errors.New("transport: empty envelope in response")
	}
	return resp.Envelope, nil
}

// RegisterBatch implements pubsub.BatchRegistrar: all registrations of one
// subscriber travel in a single round trip instead of one per condition.
// Against a server whose "info" response does not advertise the batch RPC
// (one predating it), it transparently degrades to one Register round trip
// per item.
func (c *Client) RegisterBatch(reqs []*pubsub.RegistrationRequest) ([]pubsub.BatchResult, error) {
	if err := c.ensureInfo(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	hasBatch := c.hasBatch
	c.mu.Unlock()
	if !hasBatch {
		// Old server: fall back to the per-condition RPC.
		results := make([]pubsub.BatchResult, len(reqs))
		for i, req := range reqs {
			if req == nil {
				results[i].Err = "pubsub: incomplete registration request"
				continue
			}
			results[i].CondID = req.CondID
			env, err := c.Register(req)
			if err != nil {
				results[i].Err = err.Error()
				continue
			}
			results[i].Envelope = env
		}
		return results, nil
	}
	resp, err := c.roundTrip(&request{Kind: "register-batch", Batch: reqs})
	if err != nil {
		return nil, err
	}
	if len(resp.Batch) != len(reqs) {
		return nil, fmt.Errorf("transport: %d batch results for %d requests", len(resp.Batch), len(reqs))
	}
	return resp.Batch, nil
}

// Fetch retrieves the broadcast for a document name ("" = latest published).
// Against a v3 server the payload arrives as the server's per-epoch wire
// bytes; older servers answer with per-connection gob. A fetch naming a
// document that rotated out of the server's retention ring is answered with
// the nearest retained snapshot — check Broadcast.DocName when that matters.
func (c *Client) Fetch(docName string) (*pubsub.Broadcast, error) {
	// Capability discovery is best-effort: if info fails the fetch round
	// trip below will surface the real error.
	_ = c.ensureInfo()
	c.mu.Lock()
	hasWire := c.hasWire
	c.mu.Unlock()
	resp, err := c.roundTrip(&request{Kind: "fetch", Doc: docName, Wire: hasWire})
	if err != nil {
		return nil, err
	}
	if len(resp.Raw) > 0 {
		f, err := wire.UnmarshalFrame(resp.Raw)
		if err != nil {
			return nil, fmt.Errorf("transport: decoding fetched snapshot: %w", err)
		}
		if f.Type != wire.FrameSnapshot || f.Snapshot == nil {
			return nil, fmt.Errorf("transport: fetch answered with frame type %d", f.Type)
		}
		return f.Snapshot, nil
	}
	if resp.Broadcast == nil {
		return nil, errors.New("transport: empty broadcast in response")
	}
	return resp.Broadcast, nil
}

var _ pubsub.BatchRegistrar = (*Client)(nil)
