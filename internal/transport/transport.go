// Package transport puts the registration and dissemination phases on the
// wire: a publisher-side TCP server and a subscriber-side client exchanging
// gob-encoded messages. The client implements pubsub.BatchRegistrar, so a
// subscriber registering over the network sends all matching conditions in
// a single register-batch round trip (falling back to per-condition
// Register calls only against servers that predate the batch RPC);
// broadcasts are fetched from the same endpoint.
//
// The Pedersen parameters themselves are system-wide public setup (group
// choice + derivation seed) and are established out of band, as in the
// paper, where the IdMgr publishes Param = ⟨G, g, h⟩ once.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"ppcd/internal/ocbe"
	"ppcd/internal/pedersen"
	"ppcd/internal/policy"
	"ppcd/internal/pubsub"
)

// request is the single wire request envelope.
type request struct {
	Kind  string // "info", "register", "register-batch", "fetch"
	Reg   *pubsub.RegistrationRequest
	Batch []*pubsub.RegistrationRequest
	Doc   string // for fetch: document name ("" = latest)
}

// response is the single wire response envelope.
type response struct {
	Err        string
	Conditions []policy.Condition
	Ell        int
	// HasBatch advertises the register-batch RPC in "info" responses;
	// servers that predate it leave the field unset, steering clients to
	// the per-condition path without error-text sniffing.
	HasBatch  bool
	Envelope  *ocbe.Envelope
	Batch     []pubsub.BatchResult
	Broadcast *pubsub.Broadcast
}

// Server exposes a publisher over TCP.
type Server struct {
	pub *pubsub.Publisher

	mu        sync.Mutex
	ln        net.Listener
	broadcast map[string]*pubsub.Broadcast
	latest    string
	wg        sync.WaitGroup
	closed    bool
}

// NewServer wraps a publisher. Call Serve to start accepting connections.
func NewServer(pub *pubsub.Publisher) (*Server, error) {
	if pub == nil {
		return nil, errors.New("transport: nil publisher")
	}
	return &Server{pub: pub, broadcast: make(map[string]*pubsub.Broadcast)}, nil
}

// Listen binds the server to addr (e.g. "127.0.0.1:0") and starts serving in
// the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.handle(conn)
		}()
	}
}

// maxRequestBytes bounds how much a single gob-encoded request may read
// from the connection before it is decoded — without it, a hostile client
// could stream an arbitrarily large batch that is fully materialized before
// the publisher's batch-size cap can reject it.
const maxRequestBytes = 64 << 20

func (s *Server) handle(conn net.Conn) {
	lim := &io.LimitedReader{R: conn}
	dec := gob.NewDecoder(lim)
	enc := gob.NewEncoder(conn)
	for {
		lim.N = maxRequestBytes
		var req request
		if err := dec.Decode(&req); err != nil {
			return // client closed, over-limit, or garbage; drop the connection
		}
		resp := s.dispatch(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req *request) *response {
	switch req.Kind {
	case "info":
		return &response{Conditions: s.pub.Conditions(), Ell: s.pub.Ell(), HasBatch: true}
	case "register":
		env, err := s.pub.Register(req.Reg)
		if err != nil {
			return &response{Err: err.Error()}
		}
		return &response{Envelope: env}
	case "register-batch":
		results, err := s.pub.RegisterBatch(req.Batch)
		if err != nil {
			return &response{Err: err.Error()}
		}
		return &response{Batch: results}
	case "fetch":
		s.mu.Lock()
		defer s.mu.Unlock()
		name := req.Doc
		if name == "" {
			name = s.latest
		}
		b, ok := s.broadcast[name]
		if !ok {
			return &response{Err: fmt.Sprintf("transport: no broadcast for %q", name)}
		}
		return &response{Broadcast: b}
	default:
		return &response{Err: fmt.Sprintf("transport: unknown request kind %q", req.Kind)}
	}
}

// PublishBroadcast stores a broadcast package for retrieval by clients.
func (s *Server) PublishBroadcast(b *pubsub.Broadcast) error {
	if b == nil {
		return errors.New("transport: nil broadcast")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.broadcast[b.DocName] = b
	s.latest = b.DocName
	return nil
}

// Close stops the listener and waits for in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Client is the subscriber-side connection to a publisher server. It
// implements pubsub.Registrar.
type Client struct {
	mu       sync.Mutex
	conn     net.Conn
	enc      *gob.Encoder
	dec      *gob.Decoder
	params   *pedersen.Params
	ell      int
	conds    []policy.Condition
	hasBatch bool
	haveIn   bool
}

// Dial connects to a publisher server. params must match the system-wide
// Pedersen setup.
func Dial(addr string, params *pedersen.Params) (*Client, error) {
	if params == nil {
		return nil, errors.New("transport: nil params")
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn), params: params}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req *request) (*response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("transport: send: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("transport: receive: %w", err)
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return &resp, nil
}

func (c *Client) ensureInfo() error {
	c.mu.Lock()
	have := c.haveIn
	c.mu.Unlock()
	if have {
		return nil
	}
	resp, err := c.roundTrip(&request{Kind: "info"})
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.conds = resp.Conditions
	c.ell = resp.Ell
	c.hasBatch = resp.HasBatch
	c.haveIn = true
	c.mu.Unlock()
	return nil
}

// Params implements pubsub.Registrar.
func (c *Client) Params() *pedersen.Params { return c.params }

// Ell implements pubsub.Registrar.
func (c *Client) Ell() int {
	if err := c.ensureInfo(); err != nil {
		return 0
	}
	return c.ell
}

// Conditions implements pubsub.Registrar.
func (c *Client) Conditions() []policy.Condition {
	if err := c.ensureInfo(); err != nil {
		return nil
	}
	return append([]policy.Condition(nil), c.conds...)
}

// Register implements pubsub.Registrar.
func (c *Client) Register(reg *pubsub.RegistrationRequest) (*ocbe.Envelope, error) {
	resp, err := c.roundTrip(&request{Kind: "register", Reg: reg})
	if err != nil {
		return nil, err
	}
	if resp.Envelope == nil {
		return nil, errors.New("transport: empty envelope in response")
	}
	return resp.Envelope, nil
}

// RegisterBatch implements pubsub.BatchRegistrar: all registrations of one
// subscriber travel in a single round trip instead of one per condition.
// Against a server whose "info" response does not advertise the batch RPC
// (one predating it), it transparently degrades to one Register round trip
// per item.
func (c *Client) RegisterBatch(reqs []*pubsub.RegistrationRequest) ([]pubsub.BatchResult, error) {
	if err := c.ensureInfo(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	hasBatch := c.hasBatch
	c.mu.Unlock()
	if !hasBatch {
		// Old server: fall back to the per-condition RPC.
		results := make([]pubsub.BatchResult, len(reqs))
		for i, req := range reqs {
			if req == nil {
				results[i].Err = "pubsub: incomplete registration request"
				continue
			}
			results[i].CondID = req.CondID
			env, err := c.Register(req)
			if err != nil {
				results[i].Err = err.Error()
				continue
			}
			results[i].Envelope = env
		}
		return results, nil
	}
	resp, err := c.roundTrip(&request{Kind: "register-batch", Batch: reqs})
	if err != nil {
		return nil, err
	}
	if len(resp.Batch) != len(reqs) {
		return nil, fmt.Errorf("transport: %d batch results for %d requests", len(resp.Batch), len(reqs))
	}
	return resp.Batch, nil
}

// Fetch retrieves the broadcast for a document name ("" = latest published).
func (c *Client) Fetch(docName string) (*pubsub.Broadcast, error) {
	resp, err := c.roundTrip(&request{Kind: "fetch", Doc: docName})
	if err != nil {
		return nil, err
	}
	if resp.Broadcast == nil {
		return nil, errors.New("transport: empty broadcast in response")
	}
	return resp.Broadcast, nil
}

var _ pubsub.BatchRegistrar = (*Client)(nil)
