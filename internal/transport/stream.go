// Streaming dissemination: long-lived subscribe connections over which the
// server pushes epoch-stamped wire frames. The server marshals each epoch's
// snapshot and delta once (PublishBroadcast) and fans the same bytes out to
// every stream; per-connection work is one channel send and one deadline
// write. Slow consumers — a full outbound queue or a write missing its
// deadline — are evicted rather than allowed to stall the fan-out.
package transport

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ppcd/internal/pubsub"
	"ppcd/internal/wire"
)

const (
	defaultHeartbeat    = 30 * time.Second
	defaultWriteTimeout = 10 * time.Second
	// streamQueueDepth bounds each stream's outbound frame queue; a
	// consumer this far behind the publish rate is evicted and must
	// reconnect (its catch-up is then one delta or snapshot, cheaper than
	// an unbounded backlog).
	streamQueueDepth = 32
)

// ErrStreamUnsupported is returned by Subscribe against servers that
// predate (or disabled) the streaming RPC.
var ErrStreamUnsupported = errors.New("transport: server does not support streaming")

// streamConn is one subscribed connection. epochs (per-document last epoch
// enqueued) is guarded by the server mutex; the queue decouples the fan-out
// from the consumer's socket.
type streamConn struct {
	conn   net.Conn
	doc    string // "" = all documents
	ch     chan []byte
	done   chan struct{}
	once   sync.Once
	epochs map[string]uint64
}

// shutdown wakes the writer loop and unblocks any in-flight socket I/O.
// Idempotent; callers additionally remove the conn from s.streams under the
// server mutex.
func (sc *streamConn) shutdown() {
	sc.once.Do(func() {
		close(sc.done)
		sc.conn.Close()
	})
}

// offer enqueues pre-marshaled frame bytes without blocking; a full queue
// evicts the consumer. Callers hold s.mu.
func (s *Server) offer(sc *streamConn, payload []byte) {
	select {
	case sc.ch <- payload:
	default:
		delete(s.streams, sc)
		sc.shutdown()
	}
}

// dropStream removes a stream (writer error, consumer hangup).
func (s *Server) dropStream(sc *streamConn) {
	s.mu.Lock()
	delete(s.streams, sc)
	s.mu.Unlock()
	sc.shutdown()
}

// serveStream converts an accepted connection into a frame stream: it
// registers the conn, enqueues the catch-up frame for every retained
// document the subscriber is behind on, then writes queued frames until the
// consumer goes away. Runs on the connection's handler goroutine.
func (s *Server) serveStream(conn net.Conn, req *request) {
	sc := &streamConn{
		conn:   conn,
		doc:    req.Doc,
		ch:     make(chan []byte, streamQueueDepth),
		done:   make(chan struct{}),
		epochs: make(map[string]uint64),
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.streams[sc] = struct{}{}
	// Catch-up: newest retained entry per (matching) document. A subscriber
	// already at that epoch gets nothing; one whose epoch is still retained
	// gets a delta; anyone else a snapshot.
	latest := make(map[string]*epochEntry)
	for _, ent := range s.ring {
		if sc.doc == "" || sc.doc == ent.doc {
			latest[ent.doc] = ent
		}
	}
	for doc, ent := range latest {
		sc.epochs[doc] = ent.epoch
		if req.LastEpoch == ent.epoch && req.LastGen == ent.b.Gen {
			continue
		}
		payload := ent.snapshot
		// Delta catch-up only against the exact retained state the
		// subscriber holds: same document, same epoch, same publisher
		// generation (a restarted publisher renumbers epochs). The
		// marshaled delta is cached per base so a reconnect storm diffs
		// each (base, target) pair once.
		if base := s.findEntry(doc, req.LastEpoch); base != nil && base.epoch < ent.epoch && base.b.Gen == req.LastGen {
			if cached, ok := ent.catchup[base.epoch]; ok {
				payload = cached
			} else if d, err := pubsub.Diff(base.b, ent.b); err == nil {
				if ent.catchup == nil {
					ent.catchup = make(map[uint64][]byte)
				}
				raw := wire.MarshalDeltaFrame(d)
				ent.catchup[base.epoch] = raw
				payload = raw
			}
		}
		s.offer(sc, payload)
	}
	s.mu.Unlock()

	// Consumer watchdog: subscribers never send after the subscribe
	// request, so any read result — EOF, data, error — means hangup.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		var one [1]byte
		conn.Read(one[:])
		s.dropStream(sc)
	}()

	var lenBuf [4]byte
	for {
		select {
		case payload := <-sc.ch:
			if err := conn.SetWriteDeadline(time.Now().Add(s.writeTimeout)); err != nil {
				s.dropStream(sc)
				return
			}
			binary.BigEndian.PutUint32(lenBuf[:], uint32(len(payload)))
			if _, err := conn.Write(lenBuf[:]); err != nil {
				s.dropStream(sc)
				return
			}
			if _, err := conn.Write(payload); err != nil {
				s.dropStream(sc)
				return
			}
		case <-sc.done:
			return
		}
	}
}

// heartbeatLoop periodically fans a heartbeat frame (carrying the newest
// retained epoch) to every stream, so idle consumers can detect dead
// publishers and the server can evict dead consumers via the write path.
func (s *Server) heartbeatLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.heartbeat)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.mu.Lock()
			var epoch uint64
			if len(s.ring) > 0 {
				epoch = s.ring[len(s.ring)-1].epoch
			}
			payload := wire.MarshalHeartbeatFrame(epoch)
			for sc := range s.streams {
				s.offer(sc, payload)
			}
			s.mu.Unlock()
		case <-s.hbStop:
			return
		}
	}
}

// Stream is a subscriber-side broadcast stream: a dedicated connection on
// which the server pushes snapshot, delta and heartbeat frames.
type Stream struct {
	conn      net.Conn
	br        *bufio.Reader
	bytesRead int64
}

// Subscribe opens a streaming connection. doc filters to one document ("" =
// all); lastEpoch/lastGen are the subscriber's last applied epoch and its
// publisher generation (0, 0 = none; take them from the last data frame's
// Epoch and Snapshot.Gen / Delta.Gen) — the server catches the stream up
// with a delta when it still retains exactly that state, else with a full
// snapshot, then pushes every subsequent publish. The stream is independent
// of the client's request/response connection.
func (c *Client) Subscribe(doc string, lastEpoch, lastGen uint64) (*Stream, error) {
	if err := c.ensureInfo(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	hasStream := c.hasStream
	c.mu.Unlock()
	if !hasStream {
		return nil, ErrStreamUnsupported
	}
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	if err := gob.NewEncoder(conn).Encode(&request{Kind: "subscribe", Doc: doc, LastEpoch: lastEpoch, LastGen: lastGen}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: subscribe: %w", err)
	}
	return &Stream{conn: conn, br: bufio.NewReader(conn)}, nil
}

// Next blocks until the server pushes the next frame and returns it
// decoded. It returns an error when the connection drops (server restart,
// slow-consumer eviction) — reconnect with Subscribe and the last applied
// epoch.
func (st *Stream) Next() (*wire.Frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(st.br, lenBuf[:]); err != nil {
		return nil, fmt.Errorf("transport: stream closed: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 || n > maxRequestBytes {
		return nil, fmt.Errorf("transport: stream frame of %d bytes exceeds limits", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(st.br, payload); err != nil {
		return nil, fmt.Errorf("transport: stream truncated: %w", err)
	}
	atomic.AddInt64(&st.bytesRead, int64(n)+4)
	f, err := wire.UnmarshalFrame(payload)
	if err != nil {
		return nil, fmt.Errorf("transport: decoding stream frame: %w", err)
	}
	return f, nil
}

// SetReadDeadline bounds the next Next call (e.g. heartbeat interval ×2 for
// liveness detection).
func (st *Stream) SetReadDeadline(t time.Time) error { return st.conn.SetReadDeadline(t) }

// BytesRead reports the total stream bytes consumed (frames + length
// prefixes) — the measured cost of push dissemination.
func (st *Stream) BytesRead() int64 { return atomic.LoadInt64(&st.bytesRead) }

// Close terminates the stream.
func (st *Stream) Close() error { return st.conn.Close() }
