// Streaming dissemination: long-lived subscribe connections over which the
// server pushes epoch-stamped wire frames. The fan-out itself — marshal
// once, bounded per-connection queues, slow-consumer eviction, heartbeats —
// lives in internal/fanout; this file holds the subscriber-side Stream and
// the server-side defaults.
package transport

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"ppcd/internal/wire"
)

const defaultHeartbeat = 30 * time.Second

// ErrStreamUnsupported is returned by Subscribe against servers that
// predate (or disabled) the streaming RPC.
var ErrStreamUnsupported = errors.New("transport: server does not support streaming")

// Stream is a subscriber-side broadcast stream: a dedicated connection on
// which the server pushes snapshot, delta and heartbeat frames.
type Stream struct {
	conn      net.Conn
	br        *bufio.Reader
	bytesRead int64
}

// Subscribe opens a streaming connection. doc filters to one document ("" =
// all); lastEpoch/lastGen are the subscriber's last applied epoch and its
// publisher generation (0, 0 = none; take them from the last data frame's
// Epoch and Snapshot.Gen / Delta.Gen) — the server catches the stream up
// with a delta when it still retains exactly that state, else with a full
// snapshot, then pushes every subsequent publish. The stream is independent
// of the client's request/response connection.
func (c *Client) Subscribe(doc string, lastEpoch, lastGen uint64) (*Stream, error) {
	if err := c.ensureInfo(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	hasStream := c.hasStream
	c.mu.Unlock()
	if !hasStream {
		return nil, ErrStreamUnsupported
	}
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	if err := gob.NewEncoder(conn).Encode(&request{Kind: "subscribe", Doc: doc, LastEpoch: lastEpoch, LastGen: lastGen}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: subscribe: %w", err)
	}
	return &Stream{conn: conn, br: bufio.NewReader(conn)}, nil
}

// Next blocks until the server pushes the next frame and returns it
// decoded. It returns an error when the connection drops (server restart,
// slow-consumer eviction) — reconnect with Subscribe and the last applied
// epoch.
func (st *Stream) Next() (*wire.Frame, error) {
	f, _, err := st.NextRaw()
	return f, err
}

// NextRaw is Next exposing the frame's exact wire bytes alongside the
// decoded form. A relay retains and re-serves those bytes so its whole
// subtree sees the origin's marshal. The returned slice is owned by the
// caller.
func (st *Stream) NextRaw() (*wire.Frame, []byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(st.br, lenBuf[:]); err != nil {
		return nil, nil, fmt.Errorf("transport: stream closed: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 || n > maxRequestBytes {
		return nil, nil, fmt.Errorf("transport: stream frame of %d bytes exceeds limits", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(st.br, payload); err != nil {
		return nil, nil, fmt.Errorf("transport: stream truncated: %w", err)
	}
	atomic.AddInt64(&st.bytesRead, int64(n)+4)
	f, err := wire.UnmarshalFrame(payload)
	if err != nil {
		return nil, nil, fmt.Errorf("transport: decoding stream frame: %w", err)
	}
	return f, payload, nil
}

// SetReadDeadline bounds the next Next call (e.g. heartbeat interval ×2 for
// liveness detection).
func (st *Stream) SetReadDeadline(t time.Time) error { return st.conn.SetReadDeadline(t) }

// BytesRead reports the total stream bytes consumed (frames + length
// prefixes) — the measured cost of push dissemination.
func (st *Stream) BytesRead() int64 { return atomic.LoadInt64(&st.bytesRead) }

// Close terminates the stream.
func (st *Stream) Close() error { return st.conn.Close() }
