package transport

import (
	"bytes"
	"sync"
	"testing"

	"ppcd/internal/document"
	"ppcd/internal/idtoken"
	"ppcd/internal/pedersen"
	"ppcd/internal/policy"
	"ppcd/internal/pubsub"
	"ppcd/internal/schnorr"
)

var (
	once   sync.Once
	params *pedersen.Params
	mgr    *idtoken.Manager
)

func env(t *testing.T) (*pedersen.Params, *idtoken.Manager) {
	t.Helper()
	once.Do(func() {
		p, err := pedersen.Setup(schnorr.Must2048(), []byte("transport-test"))
		if err != nil {
			panic(err)
		}
		m, err := idtoken.NewManager(p)
		if err != nil {
			panic(err)
		}
		params, mgr = p, m
	})
	return params, mgr
}

func startServer(t *testing.T) (*Server, string, *pubsub.Publisher) {
	t.Helper()
	p, m := env(t)
	acp, err := policy.New("adult", "age >= 18", "news.txt", "body")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := pubsub.NewPublisher(p, m.PublicKey(), []*policy.ACP{acp}, pubsub.Options{Ell: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(pub)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr, pub
}

func TestRegistrationAndFetchOverTCP(t *testing.T) {
	p, _ := env(t)
	srv, addr, pub := startServer(t)

	client, err := Dial(addr, p)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if client.Ell() != 8 {
		t.Errorf("Ell = %d", client.Ell())
	}
	conds := client.Conditions()
	if len(conds) != 1 || conds[0].ID() != "age >= 18" {
		t.Fatalf("conditions = %v", conds)
	}

	// Adult subscriber registers over the wire.
	sub, err := pubsub.NewSubscriber("pn-net")
	if err != nil {
		t.Fatal(err)
	}
	tok, sec, err := mgr.IssueString("pn-net", "age", "30")
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.AddToken(tok, sec); err != nil {
		t.Fatal(err)
	}
	n, err := sub.RegisterAll(client)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("extracted %d CSSs, want 1", n)
	}

	// Publish and fetch.
	doc, err := document.New("news.txt", document.Subdocument{Name: "body", Content: []byte("tonight's story")})
	if err != nil {
		t.Fatal(err)
	}
	b, err := pub.Publish(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.PublishBroadcast(b); err != nil {
		t.Fatal(err)
	}
	fetched, err := client.Fetch("")
	if err != nil {
		t.Fatal(err)
	}
	got, err := sub.Decrypt(fetched)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got["body"], []byte("tonight's story")) {
		t.Errorf("decrypted %q", got["body"])
	}

	// A minor registers over the same infrastructure but extracts nothing
	// and decrypts nothing — and the server cannot tell.
	minor, err := pubsub.NewSubscriber("pn-minor")
	if err != nil {
		t.Fatal(err)
	}
	tok2, sec2, err := mgr.IssueString("pn-minor", "age", "15")
	if err != nil {
		t.Fatal(err)
	}
	minor.AddToken(tok2, sec2)
	client2, err := Dial(addr, p)
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	n2, err := minor.RegisterAll(client2)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 0 {
		t.Errorf("minor extracted %d CSSs", n2)
	}
	if pub.SubscriberCount() != 2 {
		t.Errorf("publisher sees %d subscribers, want 2 (minor's registration is indistinguishable)", pub.SubscriberCount())
	}
	// Rekey includes the minor's row; adult must still decrypt.
	b2, err := pub.Publish(doc)
	if err != nil {
		t.Fatal(err)
	}
	srv.PublishBroadcast(b2)
	fetched2, err := client.Fetch("news.txt")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := sub.Decrypt(fetched2); len(got) != 1 {
		t.Error("adult lost access after minor joined")
	}
	if got, _ := minor.Decrypt(fetched2); len(got) != 0 {
		t.Error("minor gained access")
	}
}

func TestFetchUnknownDoc(t *testing.T) {
	p, _ := env(t)
	_, addr, _ := startServer(t)
	client, err := Dial(addr, p)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Fetch("missing.txt"); err == nil {
		t.Error("fetch of unknown doc succeeded")
	}
}

func TestServerValidation(t *testing.T) {
	if _, err := NewServer(nil); err == nil {
		t.Error("nil publisher accepted")
	}
	_, _, pub := startServer(t)
	srv, err := NewServer(pub)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.PublishBroadcast(nil); err == nil {
		t.Error("nil broadcast accepted")
	}
	if err := srv.Close(); err != nil {
		t.Errorf("close without listen: %v", err)
	}
}

func TestDialValidation(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", nil); err == nil {
		t.Error("nil params accepted")
	}
	p, _ := env(t)
	if _, err := Dial("127.0.0.1:1", p); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestCloseIdempotent(t *testing.T) {
	srv, _, _ := startServer(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchedRegistrationOverTCP(t *testing.T) {
	// RegisterAll against a network client must complete in ONE round trip
	// via the register-batch RPC, covering several conditions at once.
	p, m := env(t)
	acp1, err := policy.New("adult", "age >= 18", "mag.txt", "body")
	if err != nil {
		t.Fatal(err)
	}
	acp2, err := policy.New("senior", "age >= 65", "mag.txt", "extra")
	if err != nil {
		t.Fatal(err)
	}
	// Equality condition: its OCBE request carries no bit commitments and
	// must still survive the gob-encoded batch (regression: nil Bits
	// placeholder broke gob).
	acp3, err := policy.New("staff", "role = vip", "mag.txt", "extra")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := pubsub.NewPublisher(p, m.PublicKey(), []*policy.ACP{acp1, acp2, acp3}, pubsub.Options{Ell: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(pub)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	client, err := Dial(addr, p)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	sub, err := pubsub.NewSubscriber("pn-batch-net")
	if err != nil {
		t.Fatal(err)
	}
	tok, sec, err := mgr.IssueString("pn-batch-net", "age", "70")
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.AddToken(tok, sec); err != nil {
		t.Fatal(err)
	}
	rtok, rsec, err := mgr.IssueString("pn-batch-net", "role", "vip")
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.AddToken(rtok, rsec); err != nil {
		t.Fatal(err)
	}
	n, err := sub.RegisterAll(client)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("extracted %d CSSs, want 3 (two age + one role condition satisfied)", n)
	}
	if pub.SubscriberCount() != 1 {
		t.Fatalf("SubscriberCount = %d", pub.SubscriberCount())
	}

	// An invalid item is reported per result, not as a connection error.
	results, err := client.RegisterBatch([]*pubsub.RegistrationRequest{
		{Token: tok, CondID: "ghost = 1", OCBE: nil},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Err == "" {
		t.Errorf("expected per-item error, got %+v", results)
	}

	// Empty batches are rejected server-side.
	if _, err := client.RegisterBatch(nil); err == nil {
		t.Error("empty batch accepted over the wire")
	}
}
