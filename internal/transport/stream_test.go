package transport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"ppcd/internal/document"
	"ppcd/internal/policy"
	"ppcd/internal/pubsub"
	"ppcd/internal/wire"
)

// startGroupedServer spins up a grouped publisher (GroupSize 2) with one
// GE condition and registers n real subscribers over the wire.
func startGroupedServer(t *testing.T, n int, tune func(*Server)) (*Server, string, *pubsub.Publisher, []*pubsub.Subscriber) {
	t.Helper()
	p, m := env(t)
	acp, err := policy.New("adult", "age >= 18", "news.txt", "body")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := pubsub.NewPublisher(p, m.PublicKey(), []*policy.ACP{acp}, pubsub.Options{Ell: 8, GroupSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(pub)
	if err != nil {
		t.Fatal(err)
	}
	if tune != nil {
		tune(srv)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	subs := make([]*pubsub.Subscriber, n)
	for i := range subs {
		nym := fmt.Sprintf("pn-stream-%d", i)
		sub, err := pubsub.NewSubscriber(nym)
		if err != nil {
			t.Fatal(err)
		}
		tok, sec, err := m.IssueString(nym, "age", "30")
		if err != nil {
			t.Fatal(err)
		}
		if err := sub.AddToken(tok, sec); err != nil {
			t.Fatal(err)
		}
		client, err := Dial(addr, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sub.RegisterAll(client)
		client.Close()
		if err != nil {
			t.Fatal(err)
		}
		if got != 1 {
			t.Fatalf("subscriber %d extracted %d CSSs", i, got)
		}
		subs[i] = sub
	}
	return srv, addr, pub, subs
}

func newsDoc(t *testing.T, body string) *document.Document {
	t.Helper()
	doc, err := document.New("news.txt", document.Subdocument{Name: "body", Content: []byte(body)})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// waitStreams polls until the server has registered `want` stream conns
// (subscribe is asynchronous with respect to the client's return).
func waitStreams(t *testing.T, srv *Server, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got := srv.Streams()
		if got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("server has %d streams, want %d", got, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func nextFrame(t *testing.T, st *Stream) *wire.Frame {
	t.Helper()
	if err := st.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	f, err := st.Next()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestStreamingSnapshotThenDelta covers the push pipeline end to end: a
// subscriber that connects before the first publish receives a snapshot,
// then one delta per churn publish, and its incrementally patched state
// decrypts identically to a full fetch.
func TestStreamingSnapshotThenDelta(t *testing.T) {
	srv, addr, pub, subs := startGroupedServer(t, 4, nil)
	p, _ := env(t)
	client, err := Dial(addr, p)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	st, err := client.Subscribe("news.txt", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	waitStreams(t, srv, 1)

	b1, err := pub.Publish(newsDoc(t, "first edition"))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.PublishBroadcast(b1); err != nil {
		t.Fatal(err)
	}
	f := nextFrame(t, st)
	if f.Type != wire.FrameSnapshot {
		t.Fatalf("first frame type = %d, want snapshot", f.Type)
	}
	reader := subs[0]
	if err := reader.ApplySnapshot(f.Snapshot); err != nil {
		t.Fatal(err)
	}
	if got, err := reader.DecryptCurrent("news.txt"); err != nil || string(got["body"]) != "first edition" {
		t.Fatalf("decrypt after snapshot: %q err=%v", got["body"], err)
	}

	// Churn: revoke one subscriber, publish; the stream must carry a delta.
	if err := pub.RevokeSubscription(subs[3].Nym()); err != nil {
		t.Fatal(err)
	}
	b2, err := pub.Publish(newsDoc(t, "second edition"))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.PublishBroadcast(b2); err != nil {
		t.Fatal(err)
	}
	f = nextFrame(t, st)
	if f.Type != wire.FrameDelta {
		t.Fatalf("churn frame type = %d, want delta", f.Type)
	}
	if f.Delta.BaseEpoch != b1.Epoch || f.Epoch != b2.Epoch {
		t.Fatalf("delta spans %d→%d, want %d→%d", f.Delta.BaseEpoch, f.Epoch, b1.Epoch, b2.Epoch)
	}
	if err := reader.ApplyDelta(f.Delta); err != nil {
		t.Fatal(err)
	}
	got, err := reader.DecryptCurrent("news.txt")
	if err != nil || string(got["body"]) != "second edition" {
		t.Fatalf("decrypt after delta: %q err=%v", got["body"], err)
	}
	// Cross-check against a full fetch.
	fetched, err := client.Fetch("news.txt")
	if err != nil {
		t.Fatal(err)
	}
	want, err := subs[1].Decrypt(fetched)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want["body"], got["body"]) {
		t.Error("streamed state and full fetch decrypt differently")
	}
	// The revoked subscriber is locked out of the new epoch.
	if out, _ := subs[3].Decrypt(fetched); len(out) != 0 {
		t.Error("revoked subscriber still decrypts")
	}
}

// TestStreamingReconnectCatchup: a subscriber reconnecting with its last
// applied epoch receives one delta catch-up when the epoch is retained, and
// a snapshot when it rotated out of the ring.
func TestStreamingReconnectCatchup(t *testing.T) {
	srv, addr, pub, subs := startGroupedServer(t, 3, func(s *Server) { s.SetRetention(3) })
	p, _ := env(t)

	publish := func(body string) *pubsub.Broadcast {
		t.Helper()
		b, err := pub.Publish(newsDoc(t, body))
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.PublishBroadcast(b); err != nil {
			t.Fatal(err)
		}
		return b
	}
	b1 := publish("v1")
	if err := pub.RevokeSubscription(subs[2].Nym()); err != nil {
		t.Fatal(err)
	}
	b2 := publish("v2")

	client, err := Dial(addr, p)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Retained base epoch → delta catch-up.
	st, err := client.Subscribe("news.txt", b1.Epoch, b1.Gen)
	if err != nil {
		t.Fatal(err)
	}
	f := nextFrame(t, st)
	st.Close()
	if f.Type != wire.FrameDelta || f.Delta.BaseEpoch != b1.Epoch || f.Epoch != b2.Epoch {
		t.Fatalf("catch-up frame = type %d epoch %d, want delta %d→%d", f.Type, f.Epoch, b1.Epoch, b2.Epoch)
	}
	reader := subs[0]
	if err := reader.ApplySnapshot(b1); err != nil {
		t.Fatal(err)
	}
	if err := reader.ApplyDelta(f.Delta); err != nil {
		t.Fatal(err)
	}
	if got, err := reader.DecryptCurrent("news.txt"); err != nil || string(got["body"]) != "v2" {
		t.Fatalf("decrypt after catch-up delta: %q err=%v", got["body"], err)
	}

	// Up-to-date base epoch → no catch-up frame, next publish streams a delta.
	st2, err := client.Subscribe("news.txt", b2.Epoch, b2.Gen)
	if err != nil {
		t.Fatal(err)
	}
	waitStreams(t, srv, 1)
	b3 := publish("v3")
	f = nextFrame(t, st2)
	st2.Close()
	if f.Type != wire.FrameDelta || f.Delta.BaseEpoch != b2.Epoch || f.Epoch != b3.Epoch {
		t.Fatalf("up-to-date subscriber got frame type %d (%d→%d), want delta %d→%d",
			f.Type, f.Delta.BaseEpoch, f.Epoch, b2.Epoch, b3.Epoch)
	}
	waitStreams(t, srv, 0)

	// Rotate b1..b3 out of the 3-entry ring, then reconnect from b1: the
	// base is gone, so the server must fall back to a full snapshot.
	publish("v4")
	b5 := publish("v5")
	st3, err := client.Subscribe("news.txt", b1.Epoch, b1.Gen)
	if err != nil {
		t.Fatal(err)
	}
	f = nextFrame(t, st3)
	st3.Close()
	if f.Type != wire.FrameSnapshot || f.Epoch != b5.Epoch {
		t.Fatalf("stale subscriber got frame type %d epoch %d, want snapshot at %d", f.Type, f.Epoch, b5.Epoch)
	}
	fresh := subs[1]
	if err := fresh.ApplySnapshot(f.Snapshot); err != nil {
		t.Fatal(err)
	}
	if got, err := fresh.DecryptCurrent("news.txt"); err != nil || string(got["body"]) != "v5" {
		t.Fatalf("decrypt after snapshot fallback: %q err=%v", got["body"], err)
	}
}

// TestRingBounded: the retention ring must stay at K entries however many
// documents are published, and a fetch for a rotated-out document is served
// with the nearest retained snapshot instead of growing memory forever.
func TestRingBounded(t *testing.T) {
	srv, addr, pub, _ := startGroupedServer(t, 2, func(s *Server) { s.SetRetention(4) })
	p, _ := env(t)
	for i := 0; i < 12; i++ {
		doc, err := document.New(fmt.Sprintf("ed-%d.txt", i), document.Subdocument{Name: "body", Content: []byte("x")})
		if err != nil {
			t.Fatal(err)
		}
		b, err := pub.Publish(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.PublishBroadcast(b); err != nil {
			t.Fatal(err)
		}
	}
	got := srv.RingLen()
	if got != 4 {
		t.Fatalf("ring holds %d entries, want 4", got)
	}

	client, err := Dial(addr, p)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	b, err := client.Fetch("ed-0.txt") // rotated out
	if err != nil {
		t.Fatal(err)
	}
	if b.DocName != "ed-11.txt" {
		t.Errorf("rotated-out fetch served %q, want the nearest snapshot ed-11.txt", b.DocName)
	}
	if b, err := client.Fetch("ed-11.txt"); err != nil || b.DocName != "ed-11.txt" {
		t.Errorf("retained fetch: doc %q err %v", b.DocName, err)
	}
}

// TestFetchGobFallback: a client that does not advertise the wire path (an
// old client) still gets the broadcast via per-connection gob.
func TestFetchGobFallback(t *testing.T) {
	srv, addr, pub, subs := startGroupedServer(t, 2, nil)
	b, err := pub.Publish(newsDoc(t, "compat"))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.PublishBroadcast(b); err != nil {
		t.Fatal(err)
	}
	p, _ := env(t)
	client, err := Dial(addr, p)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Old client: a plain fetch request without the Wire flag.
	resp, err := client.roundTrip(&request{Kind: "fetch", Doc: "news.txt"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Broadcast == nil || len(resp.Raw) != 0 {
		t.Fatalf("gob fallback answered raw=%d broadcast=%v", len(resp.Raw), resp.Broadcast != nil)
	}
	if got, err := subs[0].Decrypt(resp.Broadcast); err != nil || string(got["body"]) != "compat" {
		t.Fatalf("gob-fetched broadcast decrypt: %q err=%v", got["body"], err)
	}
	// New client: the wire path serves the same content.
	viaWire, err := client.Fetch("news.txt")
	if err != nil {
		t.Fatal(err)
	}
	if viaWire.Epoch != b.Epoch {
		t.Errorf("wire fetch at epoch %d, want %d", viaWire.Epoch, b.Epoch)
	}
	if got, err := subs[0].Decrypt(viaWire); err != nil || string(got["body"]) != "compat" {
		t.Fatalf("wire-fetched broadcast decrypt: %q err=%v", got["body"], err)
	}
}

// TestStreamingHeartbeat: idle streams receive heartbeat frames carrying
// the server's newest epoch.
func TestStreamingHeartbeat(t *testing.T) {
	srv, addr, pub, _ := startGroupedServer(t, 2, func(s *Server) { s.SetHeartbeatInterval(30 * time.Millisecond) })
	b, err := pub.Publish(newsDoc(t, "hb"))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.PublishBroadcast(b); err != nil {
		t.Fatal(err)
	}
	p, _ := env(t)
	client, err := Dial(addr, p)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	st, err := client.Subscribe("news.txt", b.Epoch, b.Gen) // up to date: no data frame
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	f := nextFrame(t, st)
	if f.Type != wire.FrameHeartbeat || f.Epoch != b.Epoch {
		t.Fatalf("idle frame = type %d epoch %d, want heartbeat at %d", f.Type, f.Epoch, b.Epoch)
	}
}

// TestSlowConsumerEviction: a subscriber that stops reading must be evicted
// (bounded queue + write deadline), not allowed to pin server memory.
func TestSlowConsumerEviction(t *testing.T) {
	srv, addr, pub, _ := startGroupedServer(t, 2, func(s *Server) { s.SetWriteTimeout(100 * time.Millisecond) })
	p, _ := env(t)
	client, err := Dial(addr, p)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	st, err := client.Subscribe("", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	waitStreams(t, srv, 1)

	// Never read from st; push megabyte-scale frames until the socket
	// buffer, then the queue, then the write deadline give out. The content
	// changes every round — an unchanged plaintext would be carried forward
	// and produce near-empty deltas that never fill a buffer.
	big := bytes.Repeat([]byte("payload "), 1<<18) // 2 MiB
	deadline := time.Now().Add(15 * time.Second)
	for i := 0; ; i++ {
		doc, err := document.New("news.txt", document.Subdocument{Name: "body", Content: append(big, byte(i))})
		if err != nil {
			t.Fatal(err)
		}
		b, err := pub.Publish(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.PublishBroadcast(b); err != nil {
			t.Fatal(err)
		}
		left := srv.Streams()
		if left == 0 {
			return // evicted
		}
		if time.Now().After(deadline) {
			t.Fatal("slow consumer never evicted")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamingChurnRace is the -race smoke the CI step runs: one publisher
// churning memberships while 8 streaming subscribers concurrently apply
// frames and decrypt. Every surviving subscriber must converge on the final
// epoch's plaintext.
func TestStreamingChurnRace(t *testing.T) {
	const nStream = 8
	srv, addr, pub, subs := startGroupedServer(t, nStream+2, nil)
	p, _ := env(t)

	final := []byte("final edition")
	var wg sync.WaitGroup
	errs := make(chan error, nStream)
	for i := 0; i < nStream; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client, err := Dial(addr, p)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			st, err := client.Subscribe("news.txt", 0, 0)
			if err != nil {
				errs <- err
				return
			}
			defer st.Close()
			reader := subs[i]
			for {
				if err := st.SetReadDeadline(time.Now().Add(20 * time.Second)); err != nil {
					errs <- err
					return
				}
				f, err := st.Next()
				if err != nil {
					errs <- fmt.Errorf("subscriber %d: %w", i, err)
					return
				}
				switch f.Type {
				case wire.FrameSnapshot:
					if err := reader.ApplySnapshot(f.Snapshot); err != nil {
						errs <- err
						return
					}
				case wire.FrameDelta:
					if err := reader.ApplyDelta(f.Delta); err != nil {
						errs <- fmt.Errorf("subscriber %d apply: %w", i, err)
						return
					}
				case wire.FrameHeartbeat:
					continue
				}
				got, err := reader.DecryptCurrent("news.txt")
				if err != nil {
					errs <- err
					return
				}
				if bytes.Equal(got["body"], final) {
					return // converged
				}
			}
		}(i)
	}
	waitStreams(t, srv, nStream)

	// Churn: revoke the two extra subscribers with publishes in between,
	// then the final edition.
	for k := 0; k < 2; k++ {
		b, err := pub.Publish(newsDoc(t, fmt.Sprintf("edition %d", k)))
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.PublishBroadcast(b); err != nil {
			t.Fatal(err)
		}
		if err := pub.RevokeSubscription(subs[nStream+k].Nym()); err != nil {
			t.Fatal(err)
		}
	}
	b, err := pub.Publish(newsDoc(t, string(final)))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.PublishBroadcast(b); err != nil {
		t.Fatal(err)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSubscribeUnsupported: disabling streaming makes Subscribe fail with
// ErrStreamUnsupported via the info advertisement, not a hang.
func TestSubscribeUnsupported(t *testing.T) {
	_, addr, _, _ := startGroupedServer(t, 2, func(s *Server) { s.SetStreaming(false) })
	p, _ := env(t)
	client, err := Dial(addr, p)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Subscribe("", 0, 0); err != ErrStreamUnsupported {
		t.Fatalf("Subscribe against non-streaming server: %v", err)
	}
}

// TestRestartReseededRingServesDelta models the ppcd-pub warm-restart path:
// publisher state exported, a fresh incarnation restores it, and the new
// server's retention ring is re-seeded with the restored diff bases — so a
// subscriber reconnecting with its pre-restart epoch catches up with a delta
// frame, not a snapshot.
func TestRestartReseededRingServesDelta(t *testing.T) {
	srv, _, pub, subs := startGroupedServer(t, 3, nil)
	b1, err := pub.Publish(newsDoc(t, "pre-restart"))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.PublishBroadcast(b1); err != nil {
		t.Fatal(err)
	}
	state, err := pub.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()

	// Fresh incarnation: same policies, restored state, re-seeded ring.
	p, m := env(t)
	acp, err := policy.New("adult", "age >= 18", "news.txt", "body")
	if err != nil {
		t.Fatal(err)
	}
	pub2, err := pubsub.NewPublisher(p, m.PublicKey(), []*policy.ACP{acp}, pubsub.Options{Ell: 8, GroupSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := pub2.ImportState(state); err != nil {
		t.Fatal(err)
	}
	srv2, err := NewServer(pub2)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range pub2.LastBroadcasts() {
		if err := srv2.PublishBroadcast(b); err != nil {
			t.Fatal(err)
		}
	}
	addr2, err := srv2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	// Reconnect with the pre-restart epoch: current (no catch-up frame),
	// then the first post-restart publish arrives as a delta.
	client, err := Dial(addr2, p)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	st, err := client.Subscribe("news.txt", b1.Epoch, b1.Gen)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	waitStreams(t, srv2, 1)

	b2, err := pub2.Publish(newsDoc(t, "post-restart"))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.PublishBroadcast(b2); err != nil {
		t.Fatal(err)
	}
	f := nextFrame(t, st)
	if f.Type != wire.FrameDelta || f.Delta.BaseEpoch != b1.Epoch || f.Epoch != b2.Epoch {
		t.Fatalf("post-restart frame type %d epoch %d, want delta %d→%d", f.Type, f.Epoch, b1.Epoch, b2.Epoch)
	}
	reader := subs[0]
	if err := reader.ApplySnapshot(b1); err != nil {
		t.Fatal(err)
	}
	if err := reader.ApplyDelta(f.Delta); err != nil {
		t.Fatal(err)
	}
	if got, err := reader.DecryptCurrent("news.txt"); err != nil || string(got["body"]) != "post-restart" {
		t.Fatalf("decrypt across restart: %q err=%v", got["body"], err)
	}
}
