// Package polyring implements univariate polynomial arithmetic over a prime
// field F_p (package ffbig). It provides exactly the operations Cantor's
// algorithm for genus-2 Jacobian arithmetic needs: ring operations, Euclidean
// division, (extended) greatest common divisors and evaluation. The paper's
// implementation obtained these from the G2HEC C++ library; here they are
// rebuilt from scratch (DESIGN.md substitution #1).
package polyring

import (
	"errors"
	"fmt"
	"math/big"
	"strings"

	"ppcd/internal/ffbig"
)

// Poly is a polynomial over a prime field. Coefficients are stored in
// ascending-degree order with no trailing zeros; the zero polynomial has an
// empty coefficient slice. Polys are immutable by convention: operations
// return new values.
type Poly struct {
	f      *ffbig.Field
	coeffs []*big.Int
}

// New builds a polynomial from ascending-degree coefficients, reducing each
// into the field and trimming leading zeros.
func New(f *ffbig.Field, coeffs ...*big.Int) Poly {
	cs := make([]*big.Int, len(coeffs))
	for i, c := range coeffs {
		cs[i] = f.Reduce(c)
	}
	return Poly{f: f, coeffs: trim(cs)}
}

// Zero returns the zero polynomial.
func Zero(f *ffbig.Field) Poly { return Poly{f: f} }

// One returns the constant polynomial 1.
func One(f *ffbig.Field) Poly { return Constant(f, big.NewInt(1)) }

// Constant returns the constant polynomial c.
func Constant(f *ffbig.Field, c *big.Int) Poly {
	return New(f, c)
}

// X returns the monomial x.
func X(f *ffbig.Field) Poly {
	return New(f, big.NewInt(0), big.NewInt(1))
}

func trim(cs []*big.Int) []*big.Int {
	n := len(cs)
	for n > 0 && cs[n-1].Sign() == 0 {
		n--
	}
	return cs[:n]
}

// Field returns the coefficient field.
func (p Poly) Field() *ffbig.Field { return p.f }

// Deg returns the degree of p, with Deg(0) = -1.
func (p Poly) Deg() int { return len(p.coeffs) - 1 }

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(p.coeffs) == 0 }

// IsOne reports whether p is the constant 1.
func (p Poly) IsOne() bool {
	return len(p.coeffs) == 1 && p.coeffs[0].Cmp(big.NewInt(1)) == 0
}

// Coeff returns the coefficient of x^i (zero beyond the degree).
func (p Poly) Coeff(i int) *big.Int {
	if i < 0 || i >= len(p.coeffs) {
		return big.NewInt(0)
	}
	return new(big.Int).Set(p.coeffs[i])
}

// Lead returns the leading coefficient (0 for the zero polynomial).
func (p Poly) Lead() *big.Int { return p.Coeff(p.Deg()) }

// Equal reports whether p and q are identical polynomials.
func (p Poly) Equal(q Poly) bool {
	if len(p.coeffs) != len(q.coeffs) {
		return false
	}
	for i := range p.coeffs {
		if p.coeffs[i].Cmp(q.coeffs[i]) != 0 {
			return false
		}
	}
	return true
}

// coeffRef returns the stored coefficient of x^i without copying (shared
// zero for out-of-range indices; callers must not mutate the result).
var sharedZero = big.NewInt(0)

func (p Poly) coeffRef(i int) *big.Int {
	if i < 0 || i >= len(p.coeffs) {
		return sharedZero
	}
	return p.coeffs[i]
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	n := max(len(p.coeffs), len(q.coeffs))
	cs := make([]*big.Int, n)
	for i := range cs {
		cs[i] = p.f.ReduceInPlace(new(big.Int).Add(p.coeffRef(i), q.coeffRef(i)))
	}
	return Poly{f: p.f, coeffs: trim(cs)}
}

// Sub returns p - q.
func (p Poly) Sub(q Poly) Poly {
	n := max(len(p.coeffs), len(q.coeffs))
	cs := make([]*big.Int, n)
	for i := range cs {
		cs[i] = p.f.ReduceInPlace(new(big.Int).Sub(p.coeffRef(i), q.coeffRef(i)))
	}
	return Poly{f: p.f, coeffs: trim(cs)}
}

// Neg returns -p.
func (p Poly) Neg() Poly {
	cs := make([]*big.Int, len(p.coeffs))
	for i := range cs {
		cs[i] = p.f.Neg(p.coeffs[i])
	}
	return Poly{f: p.f, coeffs: trim(cs)}
}

// Mul returns p · q (schoolbook; degrees here never exceed ~6). The
// accumulation is done with unreduced big.Int arithmetic and a single
// reduction per output coefficient — this is the hottest path of Cantor's
// algorithm.
func (p Poly) Mul(q Poly) Poly {
	if p.IsZero() || q.IsZero() {
		return Zero(p.f)
	}
	cs := make([]*big.Int, len(p.coeffs)+len(q.coeffs)-1)
	for i := range cs {
		cs[i] = new(big.Int)
	}
	var t big.Int
	for i, a := range p.coeffs {
		if a.Sign() == 0 {
			continue
		}
		for j, b := range q.coeffs {
			t.Mul(a, b)
			cs[i+j].Add(cs[i+j], &t)
		}
	}
	for i := range cs {
		p.f.ReduceInPlace(cs[i])
	}
	return Poly{f: p.f, coeffs: trim(cs)}
}

// MulScalar returns c · p.
func (p Poly) MulScalar(c *big.Int) Poly {
	cr := p.f.Reduce(c)
	if cr.Sign() == 0 {
		return Zero(p.f)
	}
	cs := make([]*big.Int, len(p.coeffs))
	for i := range cs {
		cs[i] = p.f.ReduceInPlace(new(big.Int).Mul(p.coeffs[i], cr))
	}
	return Poly{f: p.f, coeffs: trim(cs)}
}

// ErrDivByZero is returned when dividing by the zero polynomial.
var ErrDivByZero = errors.New("polyring: division by zero polynomial")

// DivMod returns quotient and remainder with p = q·quo + rem and
// deg rem < deg q.
func (p Poly) DivMod(q Poly) (quo, rem Poly, err error) {
	if q.IsZero() {
		return Poly{}, Poly{}, ErrDivByZero
	}
	if p.Deg() < q.Deg() {
		return Zero(p.f), p, nil
	}
	leadInv, err := p.f.Inv(q.Lead())
	if err != nil {
		return Poly{}, Poly{}, err
	}
	remCs := make([]*big.Int, len(p.coeffs))
	for i, c := range p.coeffs {
		remCs[i] = new(big.Int).Set(c)
	}
	quoCs := make([]*big.Int, p.Deg()-q.Deg()+1)
	for i := range quoCs {
		quoCs[i] = big.NewInt(0)
	}
	var t big.Int
	for d := p.Deg(); d >= q.Deg(); d-- {
		c := remCs[d]
		if c.Sign() == 0 {
			continue
		}
		factor := new(big.Int).Mul(c, leadInv)
		p.f.ReduceInPlace(factor)
		quoCs[d-q.Deg()] = factor
		for j := 0; j <= q.Deg(); j++ {
			idx := d - q.Deg() + j
			t.Mul(factor, q.coeffs[j])
			remCs[idx].Sub(remCs[idx], &t)
			p.f.ReduceInPlace(remCs[idx])
		}
	}
	return Poly{f: p.f, coeffs: trim(quoCs)}, Poly{f: p.f, coeffs: trim(remCs)}, nil
}

// Mod returns p mod q.
func (p Poly) Mod(q Poly) (Poly, error) {
	_, r, err := p.DivMod(q)
	return r, err
}

// Div returns the exact quotient p / q and an error if the division leaves a
// remainder. Cantor's algorithm uses exact divisions only.
func (p Poly) Div(q Poly) (Poly, error) {
	quo, rem, err := p.DivMod(q)
	if err != nil {
		return Poly{}, err
	}
	if !rem.IsZero() {
		return Poly{}, fmt.Errorf("polyring: non-exact division (remainder degree %d)", rem.Deg())
	}
	return quo, nil
}

// Monic returns p scaled to leading coefficient 1 (zero maps to zero).
func (p Poly) Monic() Poly {
	if p.IsZero() {
		return p
	}
	inv, err := p.f.Inv(p.Lead())
	if err != nil {
		// Lead of a trimmed polynomial is never zero.
		panic("polyring: unreachable: zero leading coefficient")
	}
	return p.MulScalar(inv)
}

// GCD returns the monic greatest common divisor of p and q.
func GCD(p, q Poly) (Poly, error) {
	a, b := p, q
	for !b.IsZero() {
		r, err := a.Mod(b)
		if err != nil {
			return Poly{}, err
		}
		a, b = b, r
	}
	return a.Monic(), nil
}

// XGCD returns (d, s, t) with d = gcd(p, q) monic and s·p + t·q = d.
func XGCD(p, q Poly) (d, s, t Poly, err error) {
	f := p.f
	if f == nil {
		f = q.f
	}
	r0, r1 := p, q
	s0, s1 := One(f), Zero(f)
	t0, t1 := Zero(f), One(f)
	for !r1.IsZero() {
		quo, rem, err := r0.DivMod(r1)
		if err != nil {
			return Poly{}, Poly{}, Poly{}, err
		}
		r0, r1 = r1, rem
		s0, s1 = s1, s0.Sub(quo.Mul(s1))
		t0, t1 = t1, t0.Sub(quo.Mul(t1))
	}
	if r0.IsZero() {
		return r0, s0, t0, nil
	}
	// Normalise so that d is monic.
	leadInv, err := f.Inv(r0.Lead())
	if err != nil {
		return Poly{}, Poly{}, Poly{}, err
	}
	c := Constant(f, leadInv)
	return r0.MulScalar(leadInv), s0.Mul(c), t0.Mul(c), nil
}

// Eval returns p(x).
func (p Poly) Eval(x *big.Int) *big.Int {
	acc := big.NewInt(0)
	for i := len(p.coeffs) - 1; i >= 0; i-- {
		acc = p.f.Add(p.f.Mul(acc, x), p.coeffs[i])
	}
	return acc
}

// String renders the polynomial in human-readable form, highest degree
// first.
func (p Poly) String() string {
	if p.IsZero() {
		return "0"
	}
	var parts []string
	for i := len(p.coeffs) - 1; i >= 0; i-- {
		c := p.coeffs[i]
		if c.Sign() == 0 {
			continue
		}
		switch i {
		case 0:
			parts = append(parts, c.String())
		case 1:
			parts = append(parts, fmt.Sprintf("%s*x", c))
		default:
			parts = append(parts, fmt.Sprintf("%s*x^%d", c, i))
		}
	}
	return strings.Join(parts, " + ")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
