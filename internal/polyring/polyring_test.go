package polyring

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"ppcd/internal/ffbig"
)

var f101 = ffbig.MustField(big.NewInt(101))

func polyFromInts(vs ...int64) Poly {
	cs := make([]*big.Int, len(vs))
	for i, v := range vs {
		cs[i] = big.NewInt(v)
	}
	return New(f101, cs...)
}

func randPoly(rng *rand.Rand, maxDeg int) Poly {
	n := rng.Intn(maxDeg + 2)
	cs := make([]*big.Int, n)
	for i := range cs {
		cs[i] = big.NewInt(int64(rng.Intn(101)))
	}
	return New(f101, cs...)
}

func TestConstruction(t *testing.T) {
	if !Zero(f101).IsZero() {
		t.Error("Zero not zero")
	}
	if !One(f101).IsOne() {
		t.Error("One not one")
	}
	if Zero(f101).Deg() != -1 {
		t.Error("Deg(0) != -1")
	}
	// Trailing zeros trimmed.
	p := polyFromInts(1, 2, 0, 0)
	if p.Deg() != 1 {
		t.Errorf("deg = %d, want 1", p.Deg())
	}
	// Coefficients reduced.
	q := polyFromInts(102)
	if q.Coeff(0).Int64() != 1 {
		t.Error("coefficient not reduced")
	}
	if X(f101).Deg() != 1 || X(f101).Coeff(1).Int64() != 1 {
		t.Error("X malformed")
	}
}

func TestAddSubNeg(t *testing.T) {
	p := polyFromInts(1, 2, 3)
	q := polyFromInts(100, 99)
	sum := p.Add(q)
	if sum.Coeff(0).Int64() != 0 || sum.Coeff(1).Int64() != 0 || sum.Coeff(2).Int64() != 3 {
		t.Errorf("sum = %v", sum)
	}
	if !p.Sub(p).IsZero() {
		t.Error("p - p != 0")
	}
	if !p.Add(p.Neg()).IsZero() {
		t.Error("p + (-p) != 0")
	}
}

func TestMulKnown(t *testing.T) {
	// (x+1)(x+2) = x^2 + 3x + 2
	p := polyFromInts(1, 1)
	q := polyFromInts(2, 1)
	r := p.Mul(q)
	want := polyFromInts(2, 3, 1)
	if !r.Equal(want) {
		t.Errorf("got %v, want %v", r, want)
	}
	if !p.Mul(Zero(f101)).IsZero() {
		t.Error("p*0 != 0")
	}
}

func TestMulScalar(t *testing.T) {
	p := polyFromInts(1, 2)
	r := p.MulScalar(big.NewInt(3))
	if r.Coeff(0).Int64() != 3 || r.Coeff(1).Int64() != 6 {
		t.Errorf("scalar mul = %v", r)
	}
	if !p.MulScalar(big.NewInt(0)).IsZero() {
		t.Error("0*p != 0")
	}
}

func TestDivModRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		p := randPoly(rng, 6)
		q := randPoly(rng, 3)
		if q.IsZero() {
			continue
		}
		quo, rem, err := p.DivMod(q)
		if err != nil {
			t.Fatal(err)
		}
		if rem.Deg() >= q.Deg() {
			t.Fatalf("rem degree %d >= divisor degree %d", rem.Deg(), q.Deg())
		}
		back := quo.Mul(q).Add(rem)
		if !back.Equal(p) {
			t.Fatalf("p != quo*q + rem\np=%v\nq=%v", p, q)
		}
	}
}

func TestDivByZero(t *testing.T) {
	p := polyFromInts(1, 2)
	if _, _, err := p.DivMod(Zero(f101)); err != ErrDivByZero {
		t.Errorf("expected ErrDivByZero, got %v", err)
	}
	if _, err := p.Div(Zero(f101)); err == nil {
		t.Error("Div by zero accepted")
	}
	if _, err := p.Mod(Zero(f101)); err == nil {
		t.Error("Mod by zero accepted")
	}
}

func TestExactDiv(t *testing.T) {
	p := polyFromInts(1, 1) // x+1
	q := polyFromInts(2, 1) // x+2
	prod := p.Mul(q)
	quo, err := prod.Div(p)
	if err != nil {
		t.Fatal(err)
	}
	if !quo.Equal(q) {
		t.Errorf("exact division wrong: %v", quo)
	}
	if _, err := polyFromInts(1, 0, 1).Div(p); err == nil {
		t.Error("non-exact division accepted")
	}
}

func TestMonic(t *testing.T) {
	p := polyFromInts(2, 4, 6)
	m := p.Monic()
	if m.Lead().Int64() != 1 {
		t.Errorf("monic lead = %v", m.Lead())
	}
	if !Zero(f101).Monic().IsZero() {
		t.Error("Monic(0) != 0")
	}
}

func TestGCDKnown(t *testing.T) {
	// gcd((x+1)(x+2), (x+1)(x+3)) = x+1
	a := polyFromInts(1, 1).Mul(polyFromInts(2, 1))
	b := polyFromInts(1, 1).Mul(polyFromInts(3, 1))
	g, err := GCD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(polyFromInts(1, 1)) {
		t.Errorf("gcd = %v, want x+1", g)
	}
}

func TestGCDWithZero(t *testing.T) {
	p := polyFromInts(2, 4)
	g, err := GCD(p, Zero(f101))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(p.Monic()) {
		t.Errorf("gcd(p,0) = %v", g)
	}
}

func TestXGCDBezout(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		p := randPoly(rng, 5)
		q := randPoly(rng, 5)
		if p.IsZero() && q.IsZero() {
			continue
		}
		d, s, tt, err := XGCD(p, q)
		if err != nil {
			t.Fatal(err)
		}
		lhs := s.Mul(p).Add(tt.Mul(q))
		if !lhs.Equal(d) {
			t.Fatalf("Bezout identity fails:\np=%v q=%v\nd=%v got=%v", p, q, d, lhs)
		}
		if !d.IsZero() && d.Lead().Int64() != 1 {
			t.Fatalf("gcd not monic: %v", d)
		}
		// d divides both.
		if !d.IsZero() {
			if _, err := p.Div(d); err != nil {
				t.Fatalf("d does not divide p: %v", err)
			}
			if _, err := q.Div(d); err != nil {
				t.Fatalf("d does not divide q: %v", err)
			}
		}
	}
}

func TestEval(t *testing.T) {
	// p(x) = x^2 + 3x + 2 at x=5: 25+15+2 = 42.
	p := polyFromInts(2, 3, 1)
	if got := p.Eval(big.NewInt(5)); got.Int64() != 42 {
		t.Errorf("p(5) = %v, want 42", got)
	}
	if Zero(f101).Eval(big.NewInt(7)).Sign() != 0 {
		t.Error("0(x) != 0")
	}
}

func TestEvalHomomorphism(t *testing.T) {
	f := func(a, b, x int64) bool {
		p := polyFromInts(a%101, b%101, 1)
		q := polyFromInts(b%101, 1)
		xx := big.NewInt(((x % 101) + 101) % 101)
		lhs := p.Mul(q).Eval(xx)
		rhs := f101.Mul(p.Eval(xx), q.Eval(xx))
		return lhs.Cmp(rhs) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	if Zero(f101).String() != "0" {
		t.Error("String(0)")
	}
	p := polyFromInts(2, 3, 1)
	if p.String() != "x^2 + 3*x + 2" && p.String() != "1*x^2 + 3*x + 2" {
		t.Logf("String = %q (cosmetic)", p.String())
	}
}

func TestCoeffOutOfRange(t *testing.T) {
	p := polyFromInts(1, 2)
	if p.Coeff(-1).Sign() != 0 || p.Coeff(5).Sign() != 0 {
		t.Error("out-of-range Coeff should be 0")
	}
	// Coeff must return a copy.
	c := p.Coeff(0)
	c.SetInt64(50)
	if p.Coeff(0).Int64() != 1 {
		t.Error("Coeff leaked internal state")
	}
}

func TestFieldAccessor(t *testing.T) {
	p := polyFromInts(1)
	if !p.Field().Equal(f101) {
		t.Error("Field accessor wrong")
	}
}
