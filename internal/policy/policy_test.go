package policy

import (
	"testing"
	"testing/quick"

	"ppcd/internal/ocbe"
)

func TestParseCondition(t *testing.T) {
	cases := []struct {
		in   string
		attr string
		op   ocbe.CompareOp
		val  string
	}{
		{"level >= 59", "level", ocbe.GE, "59"},
		{"role = nur", "role", ocbe.EQ, "nur"},
		{`role = "nurse"`, "role", ocbe.EQ, "nurse"},
		{"YoS < 5", "YoS", ocbe.LT, "5"},
		{"age != 30", "age", ocbe.NE, "30"},
		{"age <> 30", "age", ocbe.NE, "30"},
		{"x <= 10", "x", ocbe.LE, "10"},
		{"x > 0", "x", ocbe.GT, "0"},
		{"x == 7", "x", ocbe.EQ, "7"},
	}
	for _, c := range cases {
		got, err := ParseCondition(c.in)
		if err != nil {
			t.Errorf("ParseCondition(%q): %v", c.in, err)
			continue
		}
		if got.Attr != c.attr || got.Op != c.op || got.Value != c.val {
			t.Errorf("ParseCondition(%q) = %+v", c.in, got)
		}
	}
}

func TestParseConditionErrors(t *testing.T) {
	for _, in := range []string{"no operator here", "level >= nurse", " = 5", "x = ", ""} {
		if _, err := ParseCondition(in); err == nil {
			t.Errorf("ParseCondition(%q) accepted", in)
		}
	}
}

func TestConditionValidate(t *testing.T) {
	ok := Condition{Attr: "role", Op: ocbe.EQ, Value: "nurse"}
	if err := ok.Validate(); err != nil {
		t.Error(err)
	}
	// Inequality over a non-numeric value is rejected.
	bad := Condition{Attr: "role", Op: ocbe.GE, Value: "nurse"}
	if err := bad.Validate(); err == nil {
		t.Error("non-numeric inequality accepted")
	}
	if err := (Condition{Attr: "", Op: ocbe.EQ, Value: "x"}).Validate(); err == nil {
		t.Error("empty attr accepted")
	}
	if err := (Condition{Attr: "a", Op: ocbe.CompareOp(42), Value: "x"}).Validate(); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestConditionID(t *testing.T) {
	c := Condition{Attr: "level", Op: ocbe.GE, Value: "59"}
	if c.ID() != "level >= 59" {
		t.Errorf("ID = %q", c.ID())
	}
	if c.String() != c.ID() {
		t.Error("String != ID")
	}
}

func TestNewACP(t *testing.T) {
	acp, err := New("acp4", "role = nur && level >= 59", "EHR.xml", "ContactInfo", "Medication")
	if err != nil {
		t.Fatal(err)
	}
	if len(acp.Conds) != 2 {
		t.Fatalf("conds = %d", len(acp.Conds))
	}
	if acp.Conds[0].Attr != "role" || acp.Conds[1].Attr != "level" {
		t.Error("condition order not preserved")
	}
	if !acp.Covers("Medication") || acp.Covers("BillingInfo") {
		t.Error("Covers wrong")
	}
	ids := acp.CondIDs()
	if ids[0] != "role = nur" || ids[1] != "level >= 59" {
		t.Errorf("CondIDs = %v", ids)
	}
	if acp.String() == "" {
		t.Error("empty String")
	}
}

func TestNewACPErrors(t *testing.T) {
	if _, err := New("", "a = 1", "d", "o"); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := New("p", "a = 1", "d"); err == nil {
		t.Error("no objects accepted")
	}
	if _, err := New("p", "a = 1 || b = 2", "d", "o"); err == nil {
		t.Error("disjunction accepted")
	}
	if _, err := New("p", "garbage", "d", "o"); err == nil {
		t.Error("unparseable condition accepted")
	}
}

func TestConfigOfCanonical(t *testing.T) {
	a := ConfigOf("acp3", "acp1", "acp2")
	b := ConfigOf("acp2", "acp3", "acp1")
	if a != b {
		t.Error("ConfigOf not order independent")
	}
	if ConfigOf("x", "x", "y") != ConfigOf("x", "y") {
		t.Error("ConfigOf does not dedupe")
	}
	if ConfigOf() != EmptyConfig {
		t.Error("empty ConfigOf != EmptyConfig")
	}
	ids := ConfigOf("b", "a").IDs()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Errorf("IDs = %v", ids)
	}
	if EmptyConfig.IDs() != nil {
		t.Error("EmptyConfig.IDs != nil")
	}
}

func TestDominates(t *testing.T) {
	// Pc_i dominates Pc_j iff Pc_i ⊆ Pc_j (Definition 6).
	small := ConfigOf("acp3")
	big := ConfigOf("acp3", "acp4")
	if !Dominates(small, big) {
		t.Error("{acp3} should dominate {acp3,acp4}")
	}
	if Dominates(big, small) {
		t.Error("{acp3,acp4} should not dominate {acp3}")
	}
	if !Dominates(big, big) {
		t.Error("reflexivity fails")
	}
	if !Dominates(EmptyConfig, small) {
		t.Error("empty set dominates everything")
	}
	if Dominates(ConfigOf("other"), big) {
		t.Error("disjoint configs dominate")
	}
}

// ehrPolicies builds the six policies of the paper's Example 4.
func ehrPolicies(t *testing.T) []*ACP {
	t.Helper()
	specs := []struct {
		id, cond string
		objs     []string
	}{
		{"acp1", "role = rec", []string{"ContactInfo"}},
		{"acp2", "role = cas", []string{"BillingInfo"}},
		{"acp3", "role = doc", []string{"ContactInfo", "Medication", "PhysicalExams", "LabRecords", "Plan"}},
		{"acp4", "role = nur && level >= 59", []string{"ContactInfo", "Medication", "PhysicalExams", "LabRecords", "Plan"}},
		{"acp5", "role = dat", []string{"ContactInfo", "LabRecords"}},
		{"acp6", "role = pha", []string{"BillingInfo", "Medication"}},
	}
	var acps []*ACP
	for _, s := range specs {
		a, err := New(s.id, s.cond, "EHR.xml", s.objs...)
		if err != nil {
			t.Fatal(err)
		}
		acps = append(acps, a)
	}
	return acps
}

func TestConfigurationsEHRExample(t *testing.T) {
	// Reproduces the grouping of the paper's Example 4.
	acps := ehrPolicies(t)
	subdocs := []string{"ContactInfo", "BillingInfo", "Medication", "PhysicalExams", "LabRecords", "Plan", "Other"}
	cfg := Configurations(subdocs, acps)

	want := map[ConfigKey][]string{
		ConfigOf("acp1", "acp3", "acp4", "acp5"): {"ContactInfo"},
		ConfigOf("acp2", "acp6"):                 {"BillingInfo"},
		ConfigOf("acp3", "acp4", "acp6"):         {"Medication"},
		ConfigOf("acp3", "acp4"):                 {"PhysicalExams", "Plan"},
		ConfigOf("acp3", "acp4", "acp5"):         {"LabRecords"},
		EmptyConfig:                              {"Other"},
	}
	if len(cfg) != len(want) {
		t.Fatalf("got %d configurations, want %d: %v", len(cfg), len(want), cfg)
	}
	for k, subs := range want {
		got := cfg[k]
		if len(got) != len(subs) {
			t.Errorf("config %q: got %v, want %v", k, got, subs)
			continue
		}
		for i := range subs {
			if got[i] != subs[i] {
				t.Errorf("config %q: got %v, want %v", k, got, subs)
				break
			}
		}
	}
}

func TestConditionsUnion(t *testing.T) {
	acps := ehrPolicies(t)
	conds := Conditions(acps)
	// Six role conditions + one level condition = 7 distinct conditions.
	if len(conds) != 7 {
		t.Fatalf("got %d conditions: %v", len(conds), conds)
	}
	// Sorted and deduped.
	for i := 1; i < len(conds); i++ {
		if conds[i-1].ID() >= conds[i].ID() {
			t.Error("conditions not sorted")
		}
	}
}

func TestParseConditionNeverPanics(t *testing.T) {
	// Fuzz-style resilience: arbitrary strings must parse or error, never
	// panic, and successful parses must re-parse to the same condition from
	// their ID (canonical-form round trip).
	f := func(s string) bool {
		c, err := ParseCondition(s)
		if err != nil {
			return true
		}
		c2, err := ParseCondition(c.ID())
		return err == nil && c2.ID() == c.ID()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDominanceIsPartialOrder(t *testing.T) {
	// Reflexive, antisymmetric (up to canonical keys), transitive — over
	// random small configurations.
	f := func(a, b, c uint8) bool {
		ids := []string{"p0", "p1", "p2", "p3"}
		pick := func(mask uint8) ConfigKey {
			var sel []string
			for i, id := range ids {
				if mask&(1<<i) != 0 {
					sel = append(sel, id)
				}
			}
			return ConfigOf(sel...)
		}
		ka, kb, kc := pick(a%16), pick(b%16), pick(c%16)
		if !Dominates(ka, ka) {
			return false
		}
		if Dominates(ka, kb) && Dominates(kb, ka) && ka != kb {
			return false
		}
		if Dominates(ka, kb) && Dominates(kb, kc) && !Dominates(ka, kc) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
