// Package policy implements the paper's access-control model (§V-B):
// attribute conditions (Definition 3), access control policies as
// conjunctions of conditions over sets of subdocuments (Definition 4),
// policy configurations (Definition 5) and the dominance relation between
// configurations (Definition 6, §VIII-A).
package policy

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"ppcd/internal/ocbe"
)

// Condition is an attribute condition "nameA op l" (Definition 3). Value is
// kept in its textual form; encoding into the commitment field happens at
// the protocol layer (idtoken.EncodeValue).
type Condition struct {
	Attr  string
	Op    ocbe.CompareOp
	Value string
}

// ID returns the canonical identifier of the condition, used as the column
// key of the publisher's CSS table T.
func (c Condition) ID() string {
	return fmt.Sprintf("%s %s %s", c.Attr, c.Op, c.Value)
}

// String implements fmt.Stringer.
func (c Condition) String() string { return c.ID() }

// Validate checks structural well-formedness: non-empty attribute and value,
// and numeric values for inequality operators (hashes of strings are not
// ordered, so only = and ≠ make sense for non-numeric values).
func (c Condition) Validate() error {
	if strings.TrimSpace(c.Attr) == "" {
		return errors.New("policy: condition with empty attribute name")
	}
	if strings.TrimSpace(c.Value) == "" {
		return errors.New("policy: condition with empty value")
	}
	switch c.Op {
	case ocbe.EQ, ocbe.NE:
		return nil
	case ocbe.GT, ocbe.GE, ocbe.LT, ocbe.LE:
		if !isUint(c.Value) {
			return fmt.Errorf("policy: inequality condition %q needs a non-negative integer value", c.ID())
		}
		return nil
	}
	return fmt.Errorf("policy: unknown operator in %q", c.ID())
}

func isUint(s string) bool {
	s = strings.TrimSpace(s)
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// ParseCondition parses a textual condition such as "level >= 59" or
// `role = "nurse"`. Operators: =, ==, !=, <>, >, >=, <, <=.
func ParseCondition(s string) (Condition, error) {
	// Scan for the operator, longest match first.
	ops := []string{">=", "<=", "!=", "<>", "==", "=", ">", "<"}
	for _, op := range ops {
		idx := strings.Index(s, op)
		if idx < 0 {
			continue
		}
		attr := strings.TrimSpace(s[:idx])
		val := strings.TrimSpace(s[idx+len(op):])
		val = strings.Trim(val, `"'`)
		cmpOp, err := ocbe.ParseOp(op)
		if err != nil {
			return Condition{}, err
		}
		c := Condition{Attr: attr, Op: cmpOp, Value: val}
		if err := c.Validate(); err != nil {
			return Condition{}, err
		}
		return c, nil
	}
	return Condition{}, fmt.Errorf("policy: no comparison operator in %q", s)
}

// ACP is an access control policy (s, o, D) (Definition 4): a conjunction of
// conditions granting access to a set of subdocuments of a document.
type ACP struct {
	ID      string
	Conds   []Condition // conjunction, order fixed (defines CSS concatenation order)
	Objects []string    // subdocument names
	Doc     string
}

// New parses a policy from a conjunction expression like
// "role = nur && level >= 59".
func New(id, condExpr, doc string, objects ...string) (*ACP, error) {
	if id == "" {
		return nil, errors.New("policy: empty policy id")
	}
	if len(objects) == 0 {
		return nil, errors.New("policy: policy must target at least one subdocument")
	}
	parts := strings.Split(condExpr, "&&")
	if strings.Contains(condExpr, "||") {
		return nil, errors.New("policy: policies are conjunctions; express disjunction as separate policies")
	}
	acp := &ACP{ID: id, Doc: doc, Objects: append([]string(nil), objects...)}
	for _, p := range parts {
		c, err := ParseCondition(p)
		if err != nil {
			return nil, fmt.Errorf("policy %s: %w", id, err)
		}
		acp.Conds = append(acp.Conds, c)
	}
	return acp, nil
}

// String renders the policy in the paper's (s, o, D) notation.
func (a *ACP) String() string {
	conds := make([]string, len(a.Conds))
	for i, c := range a.Conds {
		conds[i] = c.String()
	}
	return fmt.Sprintf("(%s, {%s}, %q)", strings.Join(conds, " ∧ "), strings.Join(a.Objects, ", "), a.Doc)
}

// CondIDs returns the ordered condition identifiers of the policy.
func (a *ACP) CondIDs() []string {
	ids := make([]string, len(a.Conds))
	for i, c := range a.Conds {
		ids[i] = c.ID()
	}
	return ids
}

// Covers reports whether the policy applies to the named subdocument.
func (a *ACP) Covers(subdoc string) bool {
	for _, o := range a.Objects {
		if o == subdoc {
			return true
		}
	}
	return false
}

// ConfigKey canonically identifies a policy configuration: the sorted set of
// ACP IDs that apply to a subdocument.
type ConfigKey string

// EmptyConfig is the configuration of subdocuments no policy applies to;
// such subdocuments are encrypted with a key nobody can derive (paper
// Example 4, Pc6).
const EmptyConfig ConfigKey = ""

// ConfigOf builds the canonical key for a set of policy IDs.
func ConfigOf(acpIDs ...string) ConfigKey {
	ids := append([]string(nil), acpIDs...)
	sort.Strings(ids)
	// Deduplicate.
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return ConfigKey(strings.Join(out, "|"))
}

// IDs returns the policy IDs in the configuration.
func (k ConfigKey) IDs() []string {
	if k == EmptyConfig {
		return nil
	}
	return strings.Split(string(k), "|")
}

// Dominates reports whether configuration a dominates configuration b, i.e.
// a ⊆ b (Definition 6): any subscriber with a key for a also derives keys
// for every configuration it dominates.
func Dominates(a, b ConfigKey) bool {
	bSet := make(map[string]bool)
	for _, id := range b.IDs() {
		bSet[id] = true
	}
	for _, id := range a.IDs() {
		if !bSet[id] {
			return false
		}
	}
	return true
}

// Configurations groups a document's subdocuments by policy configuration:
// for each subdocument it collects the IDs of all policies covering it
// (Definition 5) and returns the mapping configuration → subdocuments. The
// subdocument order within each configuration follows the input order.
func Configurations(subdocs []string, acps []*ACP) map[ConfigKey][]string {
	out := make(map[ConfigKey][]string)
	for _, sd := range subdocs {
		var ids []string
		for _, a := range acps {
			if a.Covers(sd) {
				ids = append(ids, a.ID)
			}
		}
		key := ConfigOf(ids...)
		out[key] = append(out[key], sd)
	}
	return out
}

// Conditions returns the union of all conditions across policies, deduped by
// ID and sorted for deterministic iteration. Publishers use this to build
// their registration condition list.
func Conditions(acps []*ACP) []Condition {
	seen := make(map[string]Condition)
	for _, a := range acps {
		for _, c := range a.Conds {
			seen[c.ID()] = c
		}
	}
	ids := make([]string, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Condition, len(ids))
	for i, id := range ids {
		out[i] = seen[id]
	}
	return out
}
