// Package schnorr implements a Schnorr group: the prime-order subgroup of
// quadratic residues modulo a safe prime P = 2q + 1. It is an alternative
// instantiation of the commitment group for the OCBE protocols — the paper
// uses a genus-2 Jacobian (package g2); a Schnorr group provides identical
// interfaces with classic modular arithmetic. The 2048-bit modulus is the
// RFC 3526 MODP group 14 prime, a standard nothing-up-my-sleeve constant.
package schnorr

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"

	"ppcd/internal/group"
)

// rfc3526Group14Hex is the 2048-bit MODP prime from RFC 3526 §3 (a safe
// prime: (P-1)/2 is also prime).
const rfc3526Group14Hex = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1" +
	"29024E088A67CC74020BBEA63B139B22514A08798E3404DD" +
	"EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245" +
	"E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
	"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D" +
	"C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F" +
	"83655D23DCA3AD961C62F356208552BB9ED529077096966D" +
	"670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B" +
	"E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9" +
	"DE2BCBF6955817183995497CEA956AE515D2261898FA0510" +
	"15728E5A8AACAA68FFFFFFFFFFFFFFFF"

// Group is the subgroup of quadratic residues mod a safe prime P; its order
// is the prime q = (P-1)/2. Elements are canonical residues in [1, P).
type Group struct {
	p     *big.Int // safe prime modulus
	q     *big.Int // group order (P-1)/2, prime
	gen   *big.Int
	name  string
	small bool // test-scale parameters; skip expensive checks
}

// Residue is a group element: a quadratic residue mod P.
type Residue struct {
	v *big.Int
}

// String implements group.Element.
func (r *Residue) String() string {
	s := r.v.String()
	if len(s) > 20 {
		s = s[:20] + "…"
	}
	return "qr(" + s + ")"
}

// Big returns a copy of the underlying residue.
func (r *Residue) Big() *big.Int { return new(big.Int).Set(r.v) }

// New2048 returns the Schnorr group over the RFC 3526 2048-bit safe prime.
func New2048() (*Group, error) {
	p, ok := new(big.Int).SetString(rfc3526Group14Hex, 16)
	if !ok {
		return nil, errors.New("schnorr: bad built-in prime constant")
	}
	return newGroup(p, "schnorr-2048")
}

// Must2048 is New2048 panicking on error (the parameters are constants).
func Must2048() *Group {
	g, err := New2048()
	if err != nil {
		panic(err)
	}
	return g
}

// NewFromSafePrime builds a Schnorr group from a caller-supplied safe prime.
// Intended for test-scale parameters; the primality of P and (P-1)/2 is
// verified.
func NewFromSafePrime(p *big.Int, name string) (*Group, error) {
	return newGroup(p, name)
}

func newGroup(p *big.Int, name string) (*Group, error) {
	if p == nil || !p.ProbablyPrime(32) {
		return nil, errors.New("schnorr: modulus is not prime")
	}
	q := new(big.Int).Rsh(new(big.Int).Sub(p, big.NewInt(1)), 1)
	if !q.ProbablyPrime(32) {
		return nil, errors.New("schnorr: (P-1)/2 is not prime; not a safe prime")
	}
	g := &Group{p: p, q: q, name: name, small: p.BitLen() < 128}
	gen, err := g.HashToElement([]byte("ppcd/schnorr/generator/v1"))
	if err != nil {
		return nil, err
	}
	g.gen = gen.(*Residue).v
	return g, nil
}

// Name implements group.Group.
func (g *Group) Name() string { return g.name }

// Order implements group.Group.
func (g *Group) Order() *big.Int { return new(big.Int).Set(g.q) }

// Modulus returns the safe prime P.
func (g *Group) Modulus() *big.Int { return new(big.Int).Set(g.p) }

// Identity implements group.Group.
func (g *Group) Identity() group.Element { return &Residue{v: big.NewInt(1)} }

// Generator implements group.Group.
func (g *Group) Generator() group.Element { return &Residue{v: new(big.Int).Set(g.gen)} }

func (g *Group) res(e group.Element) *Residue {
	r, ok := e.(*Residue)
	if !ok {
		panic(fmt.Sprintf("schnorr: foreign element %T", e))
	}
	return r
}

// Op implements group.Group.
func (g *Group) Op(a, b group.Element) group.Element {
	ra, rb := g.res(a), g.res(b)
	v := new(big.Int).Mul(ra.v, rb.v)
	return &Residue{v: v.Mod(v, g.p)}
}

// Inverse implements group.Group.
func (g *Group) Inverse(a group.Element) group.Element {
	return &Residue{v: new(big.Int).ModInverse(g.res(a).v, g.p)}
}

// Exp implements group.Group.
func (g *Group) Exp(a group.Element, k *big.Int) group.Element {
	kk := new(big.Int).Mod(k, g.q)
	return &Residue{v: new(big.Int).Exp(g.res(a).v, kk, g.p)}
}

// Equal implements group.Group.
func (g *Group) Equal(a, b group.Element) bool {
	return g.res(a).v.Cmp(g.res(b).v) == 0
}

// IsIdentity reports whether e is the neutral element.
func (g *Group) IsIdentity(e group.Element) bool {
	return g.res(e).v.Cmp(big.NewInt(1)) == 0
}

// IsValid reports whether e encodes a quadratic residue mod P.
func (g *Group) IsValid(e group.Element) bool {
	r, ok := e.(*Residue)
	if !ok || r.v.Sign() <= 0 || r.v.Cmp(g.p) >= 0 {
		return false
	}
	// Membership test: x^q == 1 mod P.
	return new(big.Int).Exp(r.v, g.q, g.p).Cmp(big.NewInt(1)) == 0
}

// Marshal implements group.Group: fixed-width big-endian residue.
func (g *Group) Marshal(a group.Element) []byte {
	n := (g.p.BitLen() + 7) / 8
	out := make([]byte, n)
	g.res(a).v.FillBytes(out)
	return out
}

// Unmarshal implements group.Group, verifying subgroup membership.
func (g *Group) Unmarshal(data []byte) (group.Element, error) {
	n := (g.p.BitLen() + 7) / 8
	if len(data) != n {
		return nil, fmt.Errorf("schnorr: encoding length %d, want %d", len(data), n)
	}
	v := new(big.Int).SetBytes(data)
	r := &Residue{v: v}
	if !g.IsValid(r) {
		return nil, errors.New("schnorr: encoding is not a subgroup element")
	}
	return r, nil
}

// HashToElement implements group.Group: the seed is expanded to a value mod
// P and squared, yielding a quadratic residue whose discrete log is unknown.
func (g *Group) HashToElement(seed []byte) (group.Element, error) {
	n := (g.p.BitLen() + 7) / 8
	// Expand enough hash output for negligible bias.
	buf := make([]byte, 0, n+sha256.Size)
	var ctr uint32
	for len(buf) < n+16 {
		h := sha256.New()
		h.Write([]byte("ppcd/schnorr/hash-to-element/v1"))
		h.Write(seed)
		var cb [4]byte
		binary.BigEndian.PutUint32(cb[:], ctr)
		h.Write(cb[:])
		buf = h.Sum(buf)
		ctr++
	}
	v := new(big.Int).SetBytes(buf)
	v.Mod(v, g.p)
	v.Mul(v, v)
	v.Mod(v, g.p)
	if v.Sign() == 0 {
		// Probability ~2/P; perturb deterministically.
		return g.HashToElement(append([]byte{0x5a}, seed...))
	}
	return &Residue{v: v}, nil
}

var _ group.Group = (*Group)(nil)
