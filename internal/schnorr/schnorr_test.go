package schnorr

import (
	"math/big"
	"sync"
	"testing"

	"ppcd/internal/group"
)

// testGroup uses a small safe prime (P = 2q+1 with q prime) so membership
// checks stay fast; full2048 exercises the production parameters.
var (
	testGroupOnce sync.Once
	tg            *Group
	full          *Group
)

func groups(t *testing.T) (*Group, *Group) {
	t.Helper()
	testGroupOnce.Do(func() {
		// 107 = 2*53 + 1, both prime.
		var err error
		tg, err = NewFromSafePrime(big.NewInt(107), "schnorr-tiny")
		if err != nil {
			panic(err)
		}
		full = Must2048()
	})
	return tg, full
}

func TestNewValidation(t *testing.T) {
	if _, err := NewFromSafePrime(big.NewInt(15), "x"); err == nil {
		t.Error("composite modulus accepted")
	}
	// 13 is prime but 6 is not: not a safe prime.
	if _, err := NewFromSafePrime(big.NewInt(13), "x"); err == nil {
		t.Error("non-safe prime accepted")
	}
	if _, err := NewFromSafePrime(nil, "x"); err == nil {
		t.Error("nil modulus accepted")
	}
}

func TestOrderAndModulus(t *testing.T) {
	g, f := groups(t)
	if g.Order().Int64() != 53 {
		t.Errorf("order = %v, want 53", g.Order())
	}
	if g.Modulus().Int64() != 107 {
		t.Errorf("modulus = %v", g.Modulus())
	}
	if f.Order().BitLen() != 2047 {
		t.Errorf("2048 group order bits = %d", f.Order().BitLen())
	}
}

func TestGeneratorInSubgroup(t *testing.T) {
	g, f := groups(t)
	for _, gr := range []*Group{g, f} {
		gen := gr.Generator()
		if !gr.IsValid(gen) {
			t.Errorf("%s: generator not in subgroup", gr.Name())
		}
		if gr.IsIdentity(gen) {
			t.Errorf("%s: generator is identity", gr.Name())
		}
		if !gr.IsIdentity(gr.Exp(gen, gr.Order())) {
			t.Errorf("%s: g^q != 1", gr.Name())
		}
	}
}

func TestGroupLaws(t *testing.T) {
	g, _ := groups(t)
	gen := g.Generator()
	id := g.Identity()
	if !g.Equal(g.Op(gen, id), gen) {
		t.Error("g·1 != g")
	}
	if !g.IsIdentity(g.Op(gen, g.Inverse(gen))) {
		t.Error("g·g⁻¹ != 1")
	}
	a := g.Exp(gen, big.NewInt(10))
	b := g.Exp(gen, big.NewInt(20))
	if !g.Equal(g.Op(a, b), g.Op(b, a)) {
		t.Error("not commutative")
	}
	c := g.Exp(gen, big.NewInt(30))
	if !g.Equal(g.Op(g.Op(a, b), c), g.Op(a, g.Op(b, c))) {
		t.Error("not associative")
	}
}

func TestExpHomomorphismAndNegative(t *testing.T) {
	g, _ := groups(t)
	gen := g.Generator()
	lhs := g.Op(g.Exp(gen, big.NewInt(17)), g.Exp(gen, big.NewInt(29)))
	rhs := g.Exp(gen, big.NewInt(46))
	if !g.Equal(lhs, rhs) {
		t.Error("g^a·g^b != g^(a+b)")
	}
	if !g.Equal(g.Exp(gen, big.NewInt(-3)), g.Inverse(g.Exp(gen, big.NewInt(3)))) {
		t.Error("negative exponent wrong")
	}
	// Exponents reduce mod q.
	if !g.Equal(g.Exp(gen, big.NewInt(53+7)), g.Exp(gen, big.NewInt(7))) {
		t.Error("exponent not reduced mod q")
	}
}

func TestAllElementsAreResidues(t *testing.T) {
	g, _ := groups(t)
	gen := g.Generator()
	x := g.Identity()
	seen := map[string]bool{}
	for i := 0; i < 53; i++ {
		if !g.IsValid(x) {
			t.Fatalf("g^%d not a QR", i)
		}
		key := x.(*Residue).v.String()
		if seen[key] {
			t.Fatalf("cycle shorter than group order at %d", i)
		}
		seen[key] = true
		x = g.Op(x, gen)
	}
	if !g.IsIdentity(x) {
		t.Error("g^53 != 1")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	g, f := groups(t)
	for _, gr := range []*Group{g, f} {
		for _, e := range []group.Element{gr.Identity(), gr.Generator(), gr.Exp(gr.Generator(), big.NewInt(42))} {
			enc := gr.Marshal(e)
			dec, err := gr.Unmarshal(enc)
			if err != nil {
				t.Fatalf("%s: %v", gr.Name(), err)
			}
			if !gr.Equal(e, dec) {
				t.Fatalf("%s: round trip mismatch", gr.Name())
			}
		}
	}
}

func TestUnmarshalRejects(t *testing.T) {
	g, _ := groups(t)
	if _, err := g.Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Error("wrong length accepted")
	}
	// 2 is a non-residue mod 107 (107 ≡ 3 mod 8).
	if _, err := g.Unmarshal([]byte{2}); err == nil {
		t.Error("non-residue accepted")
	}
	if _, err := g.Unmarshal([]byte{0}); err == nil {
		t.Error("zero accepted")
	}
}

func TestHashToElement(t *testing.T) {
	g, f := groups(t)
	for _, gr := range []*Group{g, f} {
		a, err := gr.HashToElement([]byte("seed"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := gr.HashToElement([]byte("seed"))
		if err != nil {
			t.Fatal(err)
		}
		if !gr.Equal(a, b) {
			t.Errorf("%s: not deterministic", gr.Name())
		}
		if !gr.IsValid(a) {
			t.Errorf("%s: hashed element invalid", gr.Name())
		}
	}
	a, _ := f.HashToElement([]byte("x"))
	b, _ := f.HashToElement([]byte("y"))
	if f.Equal(a, b) {
		t.Error("distinct seeds collide in 2048 group")
	}
}

func TestResidueBigCopies(t *testing.T) {
	g, _ := groups(t)
	r := g.Generator().(*Residue)
	v := r.Big()
	v.SetInt64(999)
	if r.Big().Int64() == 999 {
		t.Error("Big leaked internal state")
	}
}

func TestStringTruncates(t *testing.T) {
	_, f := groups(t)
	s := f.Generator().String()
	if len(s) > 40 {
		t.Errorf("String too long: %d chars", len(s))
	}
}

func TestForeignElementPanics(t *testing.T) {
	g, _ := groups(t)
	defer func() {
		if recover() == nil {
			t.Error("foreign element did not panic")
		}
	}()
	g.Op(g.Generator(), fakeElem{})
}

type fakeElem struct{}

func (fakeElem) String() string { return "fake" }

func BenchmarkExp2048(b *testing.B) {
	f := Must2048()
	gen := f.Generator()
	k, _ := f.Order(), 0
	_ = k
	exp := new(big.Int).Rsh(f.Order(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Exp(gen, exp)
	}
}
