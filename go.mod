module ppcd

go 1.24
