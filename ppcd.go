// Package ppcd is a Go implementation of the privacy-preserving
// policy-based content dissemination system of Shang, Nabeel, Paci and
// Bertino (ICDE 2010): selective document broadcast under attribute-based
// access control policies, where subscribers never reveal their identity
// attribute values — not even to the publisher — and rekeying is a pure
// broadcast operation driven by access control vectors (ACVs).
//
// This package is the public facade over the implementation packages:
//
//   - identity tokens and the Identity Manager (Pedersen commitments,
//     signatures): NewIdentityManager, Token
//   - privacy-preserving registration (OCBE protocols): Subscriber.RegisterAll
//   - policy model: NewPolicy, ParseCondition
//   - selective broadcast + ACV group key management: Publisher.Publish,
//     Subscriber.Decrypt
//   - wire transport: NewServer, Dial
//
// A minimal flow (see examples/quickstart for a runnable version):
//
//	grp := ppcd.SchnorrGroup()                    // or ppcd.PaperCurve()
//	params, _ := ppcd.Setup(grp, []byte("demo"))
//	idmgr, _ := ppcd.NewIdentityManager(params)
//
//	acp, _ := ppcd.NewPolicy("adults", "age >= 18", "news", "body")
//	pub, _ := ppcd.NewPublisher(params, idmgr.PublicKey(), []*ppcd.Policy{acp}, ppcd.Options{})
//
//	alice, _ := ppcd.NewSubscriber("pn-alice")
//	tok, sec, _ := idmgr.IssueString("pn-alice", "age", "30")
//	alice.AddToken(tok, sec)
//	alice.RegisterAll(pub)                        // oblivious: pub learns nothing
//
//	doc, _ := ppcd.NewDocument("news", ppcd.Subdocument{Name: "body", Content: []byte("…")})
//	b, _ := pub.Publish(doc)
//	plain, _ := alice.Decrypt(b)                  // derives keys from public header
package ppcd

import (
	"ppcd/internal/document"
	"ppcd/internal/g2"
	"ppcd/internal/group"
	"ppcd/internal/idtoken"
	"ppcd/internal/pedersen"
	"ppcd/internal/policy"
	"ppcd/internal/pubsub"
	"ppcd/internal/relay"
	"ppcd/internal/schnorr"
	"ppcd/internal/store"
	"ppcd/internal/transport"
	"ppcd/internal/wire"
)

// Group is a prime-order cyclic group suitable for Pedersen commitments.
type Group = group.Group

// PaperCurve returns the genus-2 Jacobian group over the exact curve used in
// the paper's experiments (implemented from scratch with Cantor's
// algorithm). It is the faithful choice; SchnorrGroup is the faster one.
func PaperCurve() Group { return g2.MustPaperCurve() }

// SchnorrGroup returns the 2048-bit quadratic-residue Schnorr group (RFC
// 3526 modulus) — a drop-in, faster alternative commitment group.
func SchnorrGroup() Group { return schnorr.Must2048() }

// CommitmentParams are the system-wide Pedersen parameters ⟨G, g, h⟩
// published by the Identity Manager.
type CommitmentParams = pedersen.Params

// Setup derives Pedersen commitment parameters over a group with a
// nothing-up-my-sleeve second base.
func Setup(g Group, seed []byte) (*CommitmentParams, error) { return pedersen.Setup(g, seed) }

// IdentityManager issues identity tokens binding committed attribute values
// to pseudonyms.
type IdentityManager = idtoken.Manager

// Token is a signed identity token (nym, id-tag, commitment, σ).
type Token = idtoken.Token

// TokenSecret is the private opening (x, r) of a token's commitment.
type TokenSecret = idtoken.Secret

// NewIdentityManager creates an IdMgr with a fresh signing key.
func NewIdentityManager(params *CommitmentParams) (*IdentityManager, error) {
	return idtoken.NewManager(params)
}

// Condition is an attribute condition "name op value".
type Condition = policy.Condition

// ParseCondition parses "level >= 59"-style condition strings.
func ParseCondition(s string) (Condition, error) { return policy.ParseCondition(s) }

// Policy is an access control policy: a conjunction of conditions over a set
// of subdocuments.
type Policy = policy.ACP

// NewPolicy parses a policy from a conjunction expression such as
// "role = nur && level >= 59".
func NewPolicy(id, condExpr, doc string, objects ...string) (*Policy, error) {
	return policy.New(id, condExpr, doc, objects...)
}

// Document is an ordered collection of named subdocuments.
type Document = document.Document

// Subdocument is a named portion of a document.
type Subdocument = document.Subdocument

// NewDocument builds a document from subdocuments.
func NewDocument(name string, subdocs ...Subdocument) (*Document, error) {
	return document.New(name, subdocs...)
}

// SplitXML segments an XML document into subdocuments by element name.
func SplitXML(name string, data []byte, marks []string) (*Document, error) {
	return document.SplitXML(name, data, marks)
}

// Publisher distributes selectively encrypted documents.
type Publisher = pubsub.Publisher

// Options tunes a publisher (inequality bit bound ℓ, header capacity,
// subscriber grouping via GroupSize — §VIII-C).
type Options = pubsub.Options

// Broadcast is a selectively encrypted document package; everything in it is
// public.
type Broadcast = pubsub.Broadcast

// NewPublisher builds a publisher enforcing the given policies.
func NewPublisher(params *CommitmentParams, idmgrKey []byte, acps []*Policy, opts Options) (*Publisher, error) {
	return pubsub.NewPublisher(params, idmgrKey, acps, opts)
}

// Subscriber registers identity tokens and decrypts authorized subdocuments.
type Subscriber = pubsub.Subscriber

// Registrar is the publisher-side interface a subscriber registers against
// (satisfied by *Publisher and by the transport client).
type Registrar = pubsub.Registrar

// BatchRegistrar is a Registrar that accepts a whole registration batch in
// one round trip; Subscriber.RegisterAll uses it automatically when
// available (both *Publisher and the transport client provide it).
type BatchRegistrar = pubsub.BatchRegistrar

// RekeyStats are the publisher's rekey work counters (see Publisher.Stats):
// configurations re-solved vs. served from the incremental ACV cache (shard
// solves in grouped mode), plus §VIII-B dominance skips.
type RekeyStats = pubsub.Stats

// NewSubscriber creates a subscriber under a pseudonym.
func NewSubscriber(nym string) (*Subscriber, error) { return pubsub.NewSubscriber(nym) }

// BroadcastDelta is the incremental dissemination unit: everything that
// changed between two epochs of one document's broadcasts (re-solved shard
// sub-headers, per-shard wraps, re-encrypted items, removals).
type BroadcastDelta = pubsub.BroadcastDelta

// Diff computes the delta turning the base broadcast into cur (two epochs
// of the same document). Subscriber.ApplySnapshot / ApplyDelta consume it.
func Diff(base, cur *Broadcast) (*BroadcastDelta, error) { return pubsub.Diff(base, cur) }

// Server exposes a publisher over TCP.
type Server = transport.Server

// Client is a network connection to a publisher; it implements Registrar.
type Client = transport.Client

// Stream is a subscriber-side push stream: the server sends epoch-stamped
// snapshot, delta and heartbeat frames as broadcasts are published (see
// Client.Subscribe).
type Stream = transport.Stream

// StreamFrame is one decoded frame of a broadcast stream.
type StreamFrame = wire.Frame

// Stream frame kinds.
const (
	FrameSnapshot  = wire.FrameSnapshot
	FrameDelta     = wire.FrameDelta
	FrameHeartbeat = wire.FrameHeartbeat
)

// NewServer wraps a publisher for network serving.
func NewServer(pub *Publisher) (*Server, error) { return transport.NewServer(pub) }

// Dial connects a subscriber-side client to a publisher server.
func Dial(addr string, params *CommitmentParams) (*Client, error) {
	return transport.Dial(addr, params)
}

// Relay is a stateless dissemination edge: it subscribes upstream (to the
// origin or to another relay), retains the raw wire frames in its own
// bounded epoch ring, and re-serves them to downstream subscribers while
// proxying registrations to the origin. Relays hold no key material and
// chain into trees, making the origin's egress O(direct children) instead
// of O(total subscribers).
type Relay = relay.Relay

// RelayOptions tunes a relay (retention, queue depth, heartbeat cadence,
// upstream reconnect behaviour).
type RelayOptions = relay.Options

// NewRelay builds a relay for the given upstream address; opts may be nil
// for defaults. Call Listen to bind its downstream side.
func NewRelay(upstream string, params *CommitmentParams, opts *RelayOptions) (*Relay, error) {
	return relay.New(upstream, params, opts)
}

// StateStore is the publisher's durable-state subsystem: an AEAD-encrypted
// write-ahead log of registration/revocation/publish events plus compacted
// full-state snapshots (internal/store). A publisher recovered through it
// keeps table T, its sticky group assignments, its epoch counter and its
// incarnation generation, so the first post-restart publish is a zero-solve
// steady-state publish and streaming subscribers catch up with deltas.
type StateStore = store.Store

// StateRecovery describes what StateStore.Recover restored.
type StateRecovery = store.RecoveryStats

// OpenStore opens (creating if necessary) a durable-state directory under a
// 32-byte operator key. Typical lifecycle:
//
//	st, _ := ppcd.OpenStore(dir, key)
//	rec, _ := st.Recover(pub)   // warm restart: table, epochs, caches return
//	pub.SetJournal(st)          // subsequent mutations hit the WAL
//	defer func() { st.Snapshot(pub); st.Close() }()
func OpenStore(dir string, key [32]byte) (*StateStore, error) { return store.Open(dir, key) }

// LoadOrCreateKeyFile reads a hex-encoded operator key, generating a fresh
// random one (file mode 0600) if absent.
func LoadOrCreateKeyFile(path string) ([32]byte, error) { return store.LoadOrCreateKeyFile(path) }
