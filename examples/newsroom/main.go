// Newsroom: tiered subscription content over a real TCP connection. A news
// service publishes stories with free / premium / enterprise tiers; clients
// register over the network (the server is a separate goroutine here, but
// the wire protocol is plain gob-over-TCP and works across machines). The
// example then walks through subscription churn: a premium reader joins
// mid-stream and an enterprise reader is revoked, each rekey being a single
// broadcast.
package main

import (
	"fmt"
	"log"

	"ppcd"
)

func main() {
	log.SetFlags(0)

	params, err := ppcd.Setup(ppcd.SchnorrGroup(), []byte("newsroom"))
	check(err)
	idmgr, err := ppcd.NewIdentityManager(params)
	check(err)

	// Tier model: tier >= 1 premium, tier >= 2 enterprise. Everyone
	// registered (tier >= 0) gets the daily brief.
	mk := func(id, cond string, objs ...string) *ppcd.Policy {
		p, err := ppcd.NewPolicy(id, cond, "daily", objs...)
		check(err)
		return p
	}
	acps := []*ppcd.Policy{
		mk("free", "tier >= 0", "brief"),
		mk("premium", "tier >= 1", "brief", "analysis"),
		mk("enterprise", "tier >= 2", "brief", "analysis", "dataset"),
	}
	pub, err := ppcd.NewPublisher(params, idmgr.PublicKey(), acps, ppcd.Options{Ell: 8})
	check(err)

	// Put the publisher on the wire.
	srv, err := ppcd.NewServer(pub)
	check(err)
	addr, err := srv.Listen("127.0.0.1:0")
	check(err)
	defer srv.Close()
	fmt.Printf("publisher listening on %s\n", addr)

	mkReader := func(nym, tier string) *ppcd.Subscriber {
		s, err := ppcd.NewSubscriber(nym)
		check(err)
		tok, sec, err := idmgr.IssueString(nym, "tier", tier)
		check(err)
		check(s.AddToken(tok, sec))
		client, err := ppcd.Dial(addr, params)
		check(err)
		defer client.Close()
		_, err = s.RegisterAll(client)
		check(err)
		return s
	}

	free := mkReader("pn-free", "0")
	enterprise := mkReader("pn-ent", "2")

	doc, err := ppcd.NewDocument("daily",
		ppcd.Subdocument{Name: "brief", Content: []byte("Markets steady.")},
		ppcd.Subdocument{Name: "analysis", Content: []byte("Deep dive: rates outlook…")},
		ppcd.Subdocument{Name: "dataset", Content: []byte("csv,raw,numbers")},
	)
	check(err)

	publish := func(tag string) *ppcd.Broadcast {
		b, err := pub.Publish(doc)
		check(err)
		check(srv.PublishBroadcast(b))
		fmt.Printf("\n-- published %q --\n", tag)
		return b
	}
	show := func(name string, s *ppcd.Subscriber, b *ppcd.Broadcast) {
		got, err := s.Decrypt(b)
		check(err)
		fmt.Printf("%-12s reads %d section(s)\n", name, len(got))
	}

	b1 := publish("monday edition")
	show("free", free, b1)
	show("enterprise", enterprise, b1)

	// A premium reader joins over the network; next publish rekeys.
	premium := mkReader("pn-prem", "1")
	b2 := publish("tuesday edition (premium reader joined)")
	show("free", free, b2)
	show("premium", premium, b2)
	show("enterprise", enterprise, b2)
	if got, _ := premium.Decrypt(b1); len(got) != 0 {
		log.Fatal("backward secrecy violated")
	}
	fmt.Println("premium reader cannot read monday edition (backward secrecy) ✓")

	// The enterprise subscription lapses.
	check(pub.RevokeSubscription("pn-ent"))
	b3 := publish("wednesday edition (enterprise revoked)")
	show("free", free, b3)
	show("premium", premium, b3)
	show("enterprise", enterprise, b3)
	if got, _ := enterprise.Decrypt(b3); len(got) != 0 {
		log.Fatal("forward secrecy violated")
	}
	fmt.Println("revoked enterprise reader shut out (forward secrecy) ✓")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
