// Quickstart: the smallest end-to-end use of the ppcd public API — one
// policy, two subscribers, one broadcast. Alice (age 30) can read the body;
// Bob (age 15) cannot, and the publisher never learns either age.
package main

import (
	"fmt"
	"log"

	"ppcd"
)

func main() {
	log.SetFlags(0)

	// System setup: commitment group and parameters, published once.
	// SchnorrGroup is fast; ppcd.PaperCurve() is the paper's genus-2 Jacobian.
	params, err := ppcd.Setup(ppcd.SchnorrGroup(), []byte("quickstart"))
	check(err)
	idmgr, err := ppcd.NewIdentityManager(params)
	check(err)

	// The publisher enforces one policy: adults may read the body.
	acp, err := ppcd.NewPolicy("adults", "age >= 18", "news", "body")
	check(err)
	pub, err := ppcd.NewPublisher(params, idmgr.PublicKey(), []*ppcd.Policy{acp}, ppcd.Options{Ell: 8})
	check(err)

	// Subscribers obtain identity tokens (committed attribute values) and
	// register. Registration is oblivious: the publisher runs the same steps
	// for Alice and Bob and cannot tell who satisfied the condition.
	alice := subscriber(idmgr, pub, "pn-alice", "age", "30")
	bob := subscriber(idmgr, pub, "pn-bob", "age", "15")

	// Broadcast a document.
	doc, err := ppcd.NewDocument("news",
		ppcd.Subdocument{Name: "headline", Content: []byte("<h1>Weather: sunny</h1>")},
		ppcd.Subdocument{Name: "body", Content: []byte("adults-only analysis…")},
	)
	check(err)
	b, err := pub.Publish(doc)
	check(err)

	for _, s := range []*ppcd.Subscriber{alice, bob} {
		got, err := s.Decrypt(b)
		check(err)
		fmt.Printf("%s decrypted %d subdocument(s):\n", s.Nym(), len(got))
		for name, content := range got {
			fmt.Printf("  %s: %s\n", name, content)
		}
	}
	// Note: "headline" has no policy, so nobody can read it; a real
	// deployment would attach a public policy or send it in clear.
}

func subscriber(idmgr *ppcd.IdentityManager, pub *ppcd.Publisher, nym, tag, value string) *ppcd.Subscriber {
	s, err := ppcd.NewSubscriber(nym)
	check(err)
	tok, sec, err := idmgr.IssueString(nym, tag, value)
	check(err)
	check(s.AddToken(tok, sec))
	n, err := s.RegisterAll(pub)
	check(err)
	fmt.Printf("%s registered (extracted %d CSS(s) — the publisher doesn't know how many)\n", nym, n)
	return s
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
