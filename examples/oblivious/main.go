// Oblivious: a focused demonstration of the OCBE building block (§IV-C) —
// proving "age >= 18" without revealing the age. A bar (the sender) wraps a
// wristband code in a GE-OCBE envelope against a patron's committed age; the
// patron opens it iff of age. The bar's view is byte-for-byte identical in
// shape for a 17-year-old and a 30-year-old.
package main

import (
	"fmt"
	"log"
	"math/big"

	"ppcd/internal/ocbe"
	"ppcd/internal/pedersen"
	"ppcd/internal/schnorr"
)

func main() {
	log.SetFlags(0)

	params, err := pedersen.Setup(schnorr.Must2048(), []byte("oblivious-demo"))
	check(err)

	const ell = 8 // ages fit in 8 bits
	pred := ocbe.Predicate{Op: ocbe.GE, X0: big.NewInt(18)}
	wristband := []byte("WRISTBAND-7731")

	for _, age := range []int64{30, 17} {
		fmt.Printf("patron with (hidden) age %d:\n", age)

		// Identity phase: the patron holds a commitment to its age. In the
		// full system the IdMgr signs this; here we focus on OCBE itself.
		x := big.NewInt(age)
		c, r, err := params.CommitRandom(x)
		check(err)
		_ = c

		recv := ocbe.NewReceiver(params, x, r)
		wit, req, err := recv.Prepare(pred, ell)
		check(err)
		fmt.Printf("  patron → bar: commitment + %d bit commitments (same for any age)\n", len(req.Bits[0].Cs))

		// The bar composes the envelope. It verifies the bit commitments
		// recombine to the registered commitment and otherwise learns
		// nothing — it cannot even tell afterwards whether the open worked.
		env, err := ocbe.Compose(params, pred, ell, req, wristband)
		check(err)
		fmt.Printf("  bar → patron: envelope with %d pad pairs + ciphertext\n", len(env.Bits))

		got, err := recv.Open(env, wit)
		if err != nil {
			fmt.Printf("  patron: cannot open envelope (%v)\n\n", err)
			continue
		}
		fmt.Printf("  patron: opened envelope, got %q\n\n", got)
	}

	fmt.Println("the bar executed identical steps both times — it never learned an age,")
	fmt.Println("nor whether an envelope was successfully opened.")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
