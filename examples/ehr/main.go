// EHR: the paper's running healthcare example (§V-C2, Example 4). A
// hospital data center broadcasts an electronic health record XML file; six
// role-based policies carve it into policy configurations, and each employee
// decrypts exactly the elements their role (and level) allows — without ever
// revealing role or level to the data center.
package main

import (
	"fmt"
	"log"
	"sort"

	"ppcd"
)

const ehrXML = `<PatientRecord>
  <ContactInfo><Name>Jane Roe</Name><Phone>555-0101</Phone></ContactInfo>
  <BillingInfo><Insurer>Acme Health</Insurer><Account>99-1234</Account></BillingInfo>
  <ClinicalRecord>
    <Medication>lisinopril 10mg daily</Medication>
    <PhysicalExams>BP 118/76, HR 64</PhysicalExams>
    <LabRecords>CBC normal; X-ray clear</LabRecords>
    <Plan>reduce sodium; follow-up 6 weeks</Plan>
  </ClinicalRecord>
</PatientRecord>`

func main() {
	log.SetFlags(0)

	params, err := ppcd.Setup(ppcd.SchnorrGroup(), []byte("ehr-demo"))
	check(err)
	idmgr, err := ppcd.NewIdentityManager(params)
	check(err)

	// The six policies of Example 4.
	specs := []struct {
		id, cond string
		objs     []string
	}{
		{"acp1", "role = rec", []string{"ContactInfo"}},
		{"acp2", "role = cas", []string{"BillingInfo"}},
		{"acp3", "role = doc", []string{"ContactInfo", "Medication", "PhysicalExams", "LabRecords", "Plan"}},
		{"acp4", "role = nur && level >= 59", []string{"ContactInfo", "Medication", "PhysicalExams", "LabRecords", "Plan"}},
		{"acp5", "role = dat", []string{"ContactInfo", "LabRecords"}},
		{"acp6", "role = pha", []string{"BillingInfo", "Medication"}},
	}
	var acps []*ppcd.Policy
	for _, s := range specs {
		a, err := ppcd.NewPolicy(s.id, s.cond, "EHR.xml", s.objs...)
		check(err)
		acps = append(acps, a)
	}

	pub, err := ppcd.NewPublisher(params, idmgr.PublicKey(), acps, ppcd.Options{Ell: 8})
	check(err)

	// Hospital staff. Note the level-58 nurse: she holds a valid "nur" role
	// token but does not meet acp4's level requirement.
	staff := []struct {
		nym   string
		attrs map[string]string
	}{
		{"pn-0012", map[string]string{"role": "doc"}},
		{"pn-1492", map[string]string{"role": "nur", "level": "60"}},
		{"pn-0829", map[string]string{"role": "nur", "level": "58"}},
		{"pn-3301", map[string]string{"role": "pha"}},
		{"pn-5150", map[string]string{"role": "rec"}},
	}
	subs := make(map[string]*ppcd.Subscriber)
	for _, st := range staff {
		s, err := ppcd.NewSubscriber(st.nym)
		check(err)
		for tag, val := range st.attrs {
			tok, sec, err := idmgr.IssueString(st.nym, tag, val)
			check(err)
			check(s.AddToken(tok, sec))
		}
		_, err = s.RegisterAll(pub)
		check(err)
		subs[st.nym] = s
	}

	// Segment the XML by the policy-relevant elements and broadcast.
	doc, err := ppcd.SplitXML("EHR.xml", []byte(ehrXML),
		[]string{"ContactInfo", "BillingInfo", "Medication", "PhysicalExams", "LabRecords", "Plan"})
	check(err)
	fmt.Printf("EHR.xml segmented into %d subdocuments: %v\n\n", len(doc.Subdocs), doc.Names())

	b, err := pub.Publish(doc)
	check(err)

	roleOf := map[string]string{
		"pn-0012": "doctor", "pn-1492": "nurse (level 60)", "pn-0829": "nurse (level 58)",
		"pn-3301": "pharmacist", "pn-5150": "receptionist",
	}
	for _, st := range staff {
		got, err := subs[st.nym].Decrypt(b)
		check(err)
		names := make([]string, 0, len(got))
		for n := range got {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("%-18s %s → %v\n", st.nym, roleOf[st.nym], names)
	}

	// Revoke the doctor and rebroadcast: nothing is sent to any subscriber,
	// yet the doctor's access is gone.
	fmt.Println("\nrevoking pn-0012 and rebroadcasting (pure rekey, no unicast)…")
	check(pub.RevokeSubscription("pn-0012"))
	b2, err := pub.Publish(doc)
	check(err)
	for _, nym := range []string{"pn-0012", "pn-1492"} {
		got, err := subs[nym].Decrypt(b2)
		check(err)
		fmt.Printf("%-18s now decrypts %d subdocument(s)\n", nym, len(got))
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
