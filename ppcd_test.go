package ppcd_test

import (
	"bytes"
	"sync"
	"testing"

	"ppcd"
)

var (
	apiOnce   sync.Once
	apiParams *ppcd.CommitmentParams
	apiIdMgr  *ppcd.IdentityManager
)

func apiEnv(t *testing.T) (*ppcd.CommitmentParams, *ppcd.IdentityManager) {
	t.Helper()
	apiOnce.Do(func() {
		p, err := ppcd.Setup(ppcd.SchnorrGroup(), []byte("api-test"))
		if err != nil {
			panic(err)
		}
		m, err := ppcd.NewIdentityManager(p)
		if err != nil {
			panic(err)
		}
		apiParams, apiIdMgr = p, m
	})
	return apiParams, apiIdMgr
}

// TestPublicAPIRoundTrip runs the README quickstart flow through the public
// facade only.
func TestPublicAPIRoundTrip(t *testing.T) {
	params, idmgr := apiEnv(t)

	acp, err := ppcd.NewPolicy("adults", "age >= 18", "news", "body")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := ppcd.NewPublisher(params, idmgr.PublicKey(), []*ppcd.Policy{acp}, ppcd.Options{Ell: 8})
	if err != nil {
		t.Fatal(err)
	}

	alice, err := ppcd.NewSubscriber("pn-alice")
	if err != nil {
		t.Fatal(err)
	}
	tok, sec, err := idmgr.IssueString("pn-alice", "age", "30")
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.AddToken(tok, sec); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.RegisterAll(pub); err != nil {
		t.Fatal(err)
	}

	doc, err := ppcd.NewDocument("news", ppcd.Subdocument{Name: "body", Content: []byte("story")})
	if err != nil {
		t.Fatal(err)
	}
	b, err := pub.Publish(doc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := alice.Decrypt(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got["body"], []byte("story")) {
		t.Fatalf("decrypted %q", got["body"])
	}
}

func TestPublicAPINetworkFlow(t *testing.T) {
	params, idmgr := apiEnv(t)
	acp, err := ppcd.NewPolicy("vip", "tier >= 2", "feed", "exclusive")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := ppcd.NewPublisher(params, idmgr.PublicKey(), []*ppcd.Policy{acp}, ppcd.Options{Ell: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ppcd.NewServer(pub)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := ppcd.Dial(addr, params)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	vip, err := ppcd.NewSubscriber("pn-vip")
	if err != nil {
		t.Fatal(err)
	}
	tok, sec, err := idmgr.IssueString("pn-vip", "tier", "3")
	if err != nil {
		t.Fatal(err)
	}
	if err := vip.AddToken(tok, sec); err != nil {
		t.Fatal(err)
	}
	if _, err := vip.RegisterAll(client); err != nil {
		t.Fatal(err)
	}

	doc, err := ppcd.NewDocument("feed", ppcd.Subdocument{Name: "exclusive", Content: []byte("vip-only")})
	if err != nil {
		t.Fatal(err)
	}
	b, err := pub.Publish(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.PublishBroadcast(b); err != nil {
		t.Fatal(err)
	}
	fetched, err := client.Fetch("feed")
	if err != nil {
		t.Fatal(err)
	}
	got, err := vip.Decrypt(fetched)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got["exclusive"], []byte("vip-only")) {
		t.Fatalf("decrypted %q", got["exclusive"])
	}
}

func TestPublicAPIXMLAndConditions(t *testing.T) {
	c, err := ppcd.ParseCondition("role = nurse")
	if err != nil {
		t.Fatal(err)
	}
	if c.Attr != "role" {
		t.Error("parse wrong")
	}
	doc, err := ppcd.SplitXML("d.xml", []byte("<r><A>x</A><B>y</B></r>"), []string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Subdocs) != 3 { // A, B, _rest
		t.Errorf("subdocs = %v", doc.Names())
	}
}

func TestPaperCurveAccessible(t *testing.T) {
	if testing.Short() {
		t.Skip("jacobian setup is slow")
	}
	g := ppcd.PaperCurve()
	if g.Name() == "" || g.Order().Sign() <= 0 {
		t.Error("paper curve malformed")
	}
	if _, err := ppcd.Setup(g, []byte("x")); err != nil {
		t.Error(err)
	}
}
